//! Kill-and-resume smoke test over the real `table1` binary: SIGKILL the
//! journaled msi_xl pruned row mid-run, resume it, and diff the resumed
//! row's machine-readable result against an uninterrupted golden run.
//!
//! This is the end-to-end complement of the in-process crash tests
//! (`tests/journal_kill_resume.rs` at the workspace root): a *process*
//! death at an arbitrary byte position, not a cooperative truncation.
//!
//! The msi_xl row takes ~20 s in release, so the test is `#[ignore]`d and
//! run explicitly by the CI fault-matrix job:
//!
//! ```text
//! cargo test --release -p verc3-bench --test kill_resume -- --ignored
//! ```

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Runs `table1 --xl --pruned-only --journal <dir> [...extra]` to
/// completion and returns the `#row` machine line for the pruned row.
fn run_to_completion(journal_dir: &Path, extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.arg("--xl")
        .arg("--pruned-only")
        .arg("--journal")
        .arg(journal_dir)
        .args(extra)
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    let out = cmd.output().expect("spawn table1");
    assert!(
        out.status.success(),
        "table1 failed ({}):\n{}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    stdout
        .lines()
        .find(|l| l.starts_with("#row "))
        .unwrap_or_else(|| panic!("no #row line in:\n{stdout}"))
        .to_owned()
}

#[test]
#[ignore = "release-scale (~60 s): run explicitly, the CI fault-matrix job does"]
fn a_sigkilled_xl_run_resumes_to_the_golden_row() {
    let scratch = std::env::temp_dir().join(format!("verc3-kill-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Golden: one uninterrupted journaled run. The asserted numbers double
    // as a drift alarm against tests/msi_xl_golden.rs.
    let golden_dir = scratch.join("golden");
    std::fs::create_dir_all(&golden_dir).expect("scratch dir");
    let golden = run_to_completion(&golden_dir, &[]);
    assert!(
        golden.contains("stop=Completed") && golden.contains("resumable=false"),
        "golden run must complete: {golden}"
    );
    for pinned in ["evaluated=3176", "patterns=3165", "solutions=8"] {
        assert!(
            golden.contains(pinned),
            "golden row drifted from tests/msi_xl_golden.rs ({pinned}): {golden}"
        );
    }
    let journal_name = "msi-xl-1-thread-pruning.vc3j";
    let full_len = std::fs::metadata(golden_dir.join(journal_name))
        .expect("golden journal")
        .len();
    assert!(full_len > 0, "golden journal is empty");

    // Victim: same invocation, SIGKILLed once its journal passes ~50% of
    // the golden journal's size — a mid-enumeration, mid-generation death.
    let victim_dir = scratch.join("victim");
    std::fs::create_dir_all(&victim_dir).expect("scratch dir");
    let mut victim = Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg("--xl")
        .arg("--pruned-only")
        .arg("--journal")
        .arg(&victim_dir)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim table1");
    let victim_journal = victim_dir.join(journal_name);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let grown = std::fs::metadata(&victim_journal)
            .map(|m| m.len() >= full_len / 2)
            .unwrap_or(false);
        if grown {
            break;
        }
        if let Some(status) = victim.try_wait().expect("poll victim") {
            panic!("victim finished before the kill point ({status}); the kill threshold is stale");
        }
        assert!(
            Instant::now() < deadline,
            "victim journal never reached the kill threshold"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // The victim died without a stop record; resuming its journal must land
    // on the same completed row as the golden run, bit for bit.
    let resumed = run_to_completion(&victim_dir, &["--resume"]);
    assert_eq!(
        resumed, golden,
        "resumed row diverged from the uninterrupted golden run"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}
