//! Ablation: pruning scheme (none / exact prefixes / trace-refined).
//!
//! The paper's prefix patterns coincide with trace-refined patterns when
//! hole discovery is staged (Figure 2); when a skeleton exposes all holes at
//! once — as the MSI instances do under this protocol design — prefixes
//! degenerate to full candidates and prune nothing, while trace-refined
//! patterns keep the full benefit. This bench quantifies that gap, plus the
//! wildcard-generation overhead on randomized graph models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use verc3_bench::synthetic;
use verc3_core::{PatternMode, SynthOptions, Synthesizer};
use verc3_mck::GraphModel;
use verc3_protocols::msi::{MsiConfig, MsiModel};

fn bench_pruning_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_ablation");
    group.sample_size(10);

    // Randomized layered graph models: staged discovery, so exact and
    // refined both prune; naive pays the full product.
    let model = GraphModel::random(7, 9, 3);
    group.bench_function("graph9/naive", |b| {
        b.iter(|| Synthesizer::new(SynthOptions::default().pruning(false)).run(&model))
    });
    group.bench_function("graph9/exact", |b| {
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Exact)).run(&model)
        })
    });
    group.bench_function("graph9/refined", |b| {
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined)).run(&model)
        })
    });

    // MSI-tiny: unstaged discovery; exact ≈ naive + wildcard overhead,
    // refined prunes within the generation.
    let tiny = MsiModel::new(MsiConfig::msi_tiny());
    group.bench_function("msi_tiny/exact", |b| {
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Exact))
                .run(&tiny)
                .stats()
                .evaluated
        })
    });
    group.bench_function("msi_tiny/refined", |b| {
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined))
                .run(&tiny)
                .stats()
                .evaluated
        })
    });
    group.bench_function("msi_tiny/naive", |b| {
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pruning(false))
                .run(&tiny)
                .stats()
                .evaluated
        })
    });

    group.finish();
}

fn bench_symmetry_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_ablation");
    group.sample_size(10);

    for (label, symmetry) in [("sym", true), ("nosym", false)] {
        let mut cfg = MsiConfig::msi_tiny();
        cfg.symmetry = symmetry;
        let model = MsiModel::new(cfg);
        group.bench_function(format!("msi_tiny_refined/{label}"), |b| {
            b.iter(|| {
                Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined))
                    .run(&model)
                    .stats()
                    .evaluated
            })
        });
    }

    group.finish();
}

/// Pattern-lookup microbench: `first_pruned_depth` over a fixed query set
/// against the linear-scan reference table and the indexed table, at
/// 1k/10k/50k synthetic sparse patterns (msi_xl hole space). The
/// `pattern_index` bench is the JSON-emitting big sibling; this group keeps
/// the comparison visible in the regular criterion sweep.
fn bench_pattern_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_lookup");
    group.sample_size(10);

    let depth = synthetic::XL_ARITIES.len();
    for n in [1_000usize, 10_000, 50_000] {
        let patterns = synthetic::sparse_patterns(n, 0xA11CE + n as u64);
        let queries = synthetic::query_candidates(200, &patterns, 0xBEEF + n as u64);
        let (indexed, reference) = synthetic::build_sparse_tables(&patterns);

        group.bench_function(format!("sparse{n}/scan"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .filter(|q| black_box(&reference).first_pruned_depth(q, depth).is_some())
                    .count()
            })
        });
        group.bench_function(format!("sparse{n}/indexed"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .filter(|q| black_box(&indexed).first_pruned_depth(q, depth).is_some())
                    .count()
            })
        });
    }

    group.finish();
}

criterion_group!(
    benches,
    bench_pruning_modes,
    bench_symmetry_ablation,
    bench_pattern_lookup
);
criterion_main!(benches);
