//! Parallel-synthesis scaling: the paper's 1- vs 4-thread comparison,
//! extended to a thread sweep.
//!
//! The paper reports 1.5x (MSI-small) and 2.5x (MSI-large) end-to-end
//! improvements at 4 threads, noting that "parallel synthesis will yield the
//! greatest benefit for larger problem sizes, as initial runs may incur
//! frequent synchronization" — the same shape appears here: the small
//! problems are dominated by the serial discovery generations.

use criterion::{criterion_group, criterion_main, Criterion};
use verc3_core::{PatternMode, SynthOptions, Synthesizer};
use verc3_protocols::msi::{MsiConfig, MsiModel};

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let model = MsiModel::new(MsiConfig::msi_small());
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("msi_small_refined/{threads}t"), |b| {
            b.iter(|| {
                let r = Synthesizer::new(
                    SynthOptions::default()
                        .pattern_mode(PatternMode::Refined)
                        .threads(threads),
                )
                .run(&model);
                assert!(!r.solutions().is_empty());
                r.stats().evaluated
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
