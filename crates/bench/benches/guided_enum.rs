//! Guided-enumeration bench: pattern-constraint propagation driving the
//! odometer ([`Enumeration::Guided`]) against the lexicographic
//! skip-counting walk on the serial pruned MSI rows.
//!
//! Both strategies visit the exact same candidate sequence — this bench
//! *asserts* that the evaluated counts, pattern tables, and solution sets
//! are identical — so the interesting number is **probes**: pattern-index
//! consultations spent proposing candidates. Lexicographic enumeration
//! pays one consultation per depth per candidate from the root; the guided
//! propagator builds a per-hole refuted-action mask once per prefix
//! (watched-literal style), so refuted siblings and carry-returns are
//! cached bit tests. On msi_xl (14 holes, ~3.2k patterns) the bench
//! requires a ≥ 5× probe reduction — the acceptance bar the perf gate pins
//! against the committed baseline (measured: >1000×).
//!
//! Emits **BENCH_guided.json** at the workspace root: one
//! `(workload, strategy, evaluated, patterns, solutions, probes, wall_ms)`
//! row per (workload × strategy).
//!
//! ```text
//! cargo bench -p verc3-bench --bench guided_enum
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_bench::{run_synthesis_row_controlled, RowControls};
use verc3_core::{Enumeration, SynthReport};
use verc3_protocols::msi::MsiConfig;

/// The probe-reduction floor asserted on msi_xl (and pinned by the perf
/// gate): guided must spend at most 1/5 of the lexicographic probes.
const XL_PROBE_REDUCTION_FLOOR: f64 = 5.0;

/// Runs one serial pruned row under the given strategy, returning the
/// report and the best-of-`reps` wall time in milliseconds.
fn measure(
    workload: &str,
    config: &MsiConfig,
    strategy: Enumeration,
    reps: usize,
) -> (SynthReport, f64) {
    let controls = RowControls {
        enumeration: strategy,
        ..RowControls::default()
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (_, report) =
            run_synthesis_row_controlled(workload, config.clone(), true, 1, 1, true, &controls)
                .expect("bench synthesis run");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (last.expect("reps >= 1"), best)
}

fn main() {
    println!("group guided_enum");
    let workloads = [
        ("msi_small", MsiConfig::msi_small(), 3),
        ("msi_large", MsiConfig::msi_large(), 3),
        ("msi_xl", MsiConfig::msi_xl(), 1),
    ];

    let mut json = String::from("[\n");
    let mut first = true;
    for (workload, config, reps) in workloads {
        let (lex, lex_ms) = measure(workload, &config, Enumeration::Lexicographic, reps);
        let (guided, guided_ms) = measure(workload, &config, Enumeration::Guided, reps);

        // The correctness bar: guided proposes the identical candidate
        // sequence, so every paper-visible number matches bit-for-bit.
        assert_eq!(
            guided.stats().evaluated,
            lex.stats().evaluated,
            "{workload}"
        );
        assert_eq!(
            guided.stats().skipped_by_pruning,
            lex.stats().skipped_by_pruning,
            "{workload}"
        );
        assert_eq!(guided.stats().patterns, lex.stats().patterns, "{workload}");
        assert_eq!(guided.solutions(), lex.solutions(), "{workload}");

        let ratio = lex.stats().probes as f64 / (guided.stats().probes as f64).max(1.0);
        println!(
            "  {workload:<10} lexicographic: {:>12} probes  {lex_ms:>8.1} ms",
            lex.stats().probes
        );
        println!(
            "  {workload:<10} guided       : {:>12} probes  {guided_ms:>8.1} ms  ({ratio:.1}x fewer probes)",
            guided.stats().probes
        );
        if workload == "msi_xl" {
            assert!(
                ratio >= XL_PROBE_REDUCTION_FLOOR,
                "guided probe reduction on msi_xl is {ratio:.2}x, \
                 below the {XL_PROBE_REDUCTION_FLOOR}x bench floor"
            );
        }

        for (strategy, report, ms) in [
            ("lexicographic", &lex, lex_ms),
            ("guided", &guided, guided_ms),
        ] {
            let _ = writeln!(
                json,
                "  {}{{\"workload\": \"{}\", \"strategy\": \"{}\", \"evaluated\": {}, \
                 \"patterns\": {}, \"solutions\": {}, \"probes\": {}, \"wall_ms\": {:.3}}}",
                if first { "" } else { ", " },
                workload,
                strategy,
                report.stats().evaluated,
                report.stats().patterns,
                report.solutions().len(),
                report.stats().probes,
                ms,
            );
            first = false;
        }
    }
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_guided.json");
    std::fs::write(path, &json).expect("write BENCH_guided.json");
    println!("wrote BENCH_guided.json (6 rows)");
}
