//! Protocol-zoo bench: every declarative spec under `specs/` is loaded,
//! verified under its committed golden assignment, and — when the spec
//! commits `[golden.synth]` counts — synthesized to completion. The bench
//! *asserts* that each measured row reproduces its golden block (the same
//! self-gating contract as `fig3_check --spec`), so a drifting interpreter
//! fails here before it fails in CI's protocol-zoo matrix.
//!
//! The interesting number is the **interpreter overhead**: the interpreted
//! MSI-small port runs the exact same state space as the hand-written
//! `MsiModel` (the differential suite proves bit-identity), so the wall
//! ratio between the two is pure interpretation cost.
//!
//! Emits **BENCH_zoo.json** at the workspace root: one
//! `(spec, states, transitions, verify_wall_ms, synth_evaluated,
//! synth_patterns, synth_solutions, synth_wall_ms)` row per spec, plus an
//! `interp_overhead` ratio row against the hand-written MSI skeleton.
//!
//! ```text
//! cargo bench -p verc3-bench --bench spec_zoo
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_bench::{
    run_spec_synthesis, spec_golden_resolver, spec_verification_deviations, verify_spec_golden,
};
use verc3_mck::{Checker, CheckerOptions};
use verc3_protocols::msi::{MsiConfig, MsiModel};
use verc3_spec::ProtocolSpec;

/// Best-of-`reps` wall time, in milliseconds, of one thunk.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        last = Some(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (last.expect("reps >= 1"), best)
}

fn main() {
    println!("group spec_zoo");

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("specs/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "the zoo holds at least five specs");

    let mut json = String::from("[\n");
    let mut first = true;
    let mut msi_small_verify_ms = None;
    for path in &paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let spec =
            ProtocolSpec::from_path(path).unwrap_or_else(|e| panic!("{name}: failed to load: {e}"));

        let ((verdict, states, transitions), verify_ms) =
            best_ms(3, || verify_spec_golden(&spec, 1));
        let devs = spec_verification_deviations(&spec, verdict, states, transitions);
        assert!(devs.is_empty(), "{name}: {}", devs.join("; "));
        println!("  {name:<12} verify: {states:>6} states {transitions:>7} transitions  {verify_ms:>8.1} ms");
        if name == "msi_small" {
            msi_small_verify_ms = Some(verify_ms);
        }

        let synth = if spec.golden().gates_synthesis() {
            let start = Instant::now();
            let (report, devs) = run_spec_synthesis(&spec);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(devs.is_empty(), "{name}: {}", devs.join("; "));
            println!(
                "  {name:<12} synth : {:>6} evaluated {:>6} patterns {:>3} solutions  {ms:>8.1} ms",
                report.stats().evaluated,
                report.stats().patterns,
                report.solutions().len()
            );
            Some((report, ms))
        } else {
            None
        };

        let (se, sp, ss, sw) = match &synth {
            Some((r, ms)) => (
                r.stats().evaluated.to_string(),
                r.stats().patterns.to_string(),
                r.solutions().len().to_string(),
                format!("{ms:.3}"),
            ),
            None => ("null".into(), "null".into(), "null".into(), "null".into()),
        };
        let _ = writeln!(
            json,
            "  {}{{\"spec\": \"{name}\", \"states\": {states}, \"transitions\": {transitions}, \
             \"verify_wall_ms\": {verify_ms:.3}, \"synth_evaluated\": {se}, \
             \"synth_patterns\": {sp}, \"synth_solutions\": {ss}, \"synth_wall_ms\": {sw}}}",
            if first { "" } else { ", " },
        );
        first = false;
    }

    // Interpreter overhead: the interpreted MSI-small golden-candidate
    // verification against the hand-written skeleton on the identical state
    // space (332 states / 977 transitions, proven bit-identical by the
    // differential suite).
    let msi_spec = ProtocolSpec::from_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/msi_small.toml"
    ))
    .expect("specs/msi_small.toml");
    let resolver = spec_golden_resolver(&msi_spec);
    let hand = MsiModel::new(MsiConfig::msi_small());
    let (_, hand_ms) = best_ms(3, || {
        let out = Checker::new(CheckerOptions::default()).run_shared(&hand, &resolver);
        assert_eq!(out.stats().states_visited, 332);
        out
    });
    let spec_ms = msi_small_verify_ms.expect("msi_small is in the zoo");
    let overhead = spec_ms / hand_ms.max(1e-6);
    println!("  interpreter overhead on msi_small: {spec_ms:.1} ms vs {hand_ms:.1} ms hand-written ({overhead:.1}x)");
    let _ = writeln!(
        json,
        "  , {{\"spec\": \"interp_overhead\", \"hand_wall_ms\": {hand_ms:.3}, \
         \"spec_wall_ms\": {spec_ms:.3}, \"overhead\": {overhead:.3}}}"
    );
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_zoo.json");
    std::fs::write(path, &json).expect("write BENCH_zoo.json");
    println!("wrote BENCH_zoo.json ({} spec rows)", paths.len());
}
