//! Canonicalization microbench: the all-permutations reference sweep vs
//! the orbit-pruning partition-refinement search, over the *reachable*
//! states of the golden MSI protocol at n = 3..6 caches — the checker's
//! actual hot-path distribution, duplicate-heavy initial states included.
//!
//! Beyond the printed table, this bench emits **BENCH_canonicalize.json**
//! at the workspace root — one row per scalarset size with
//! `(model, n, states, reference_ms, orbit_ms, speedup, avg_candidates)` —
//! so the CI perf gate can track the kernel's trajectory (the
//! `BENCH_patterns.json` pattern). It also *asserts* along the way:
//!
//! * both canonicalizers return bit-identical representatives on every
//!   corpus state (a replay of the differential suite), and
//! * the orbit search beats the reference by ≥ 10× at n = 6 — the
//!   acceptance bar for retiring the factorial sweep.
//!
//! ```text
//! cargo bench -p verc3-bench --bench canonicalize
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_mck::scalarset::Symmetric;
use verc3_mck::{perm_table, NoHoles, OrbitPartition, RuleOutcome, TransitionSystem};
use verc3_protocols::msi::{MsiConfig, MsiModel, MsiState};

const SIZES: [usize; 4] = [3, 4, 5, 6];
const MAX_CORPUS: usize = 1_500;
const SAMPLES: usize = 5;

/// Collects up to [`MAX_CORPUS`] reachable canonical states of the golden
/// MSI protocol by plain BFS over the model's own rules — the exact inputs
/// the checker's canonicalization hot loop sees.
fn corpus(n: usize) -> Vec<MsiState> {
    let model = MsiModel::new(MsiConfig {
        n_caches: n,
        ..MsiConfig::golden()
    });
    let mut seen: std::collections::HashSet<MsiState> = std::collections::HashSet::new();
    let mut queue: std::collections::VecDeque<MsiState> = std::collections::VecDeque::new();
    for s in model.initial_states() {
        let s = model.canonicalize(s);
        if seen.insert(s.clone()) {
            queue.push_back(s);
        }
    }
    while let Some(state) = queue.pop_front() {
        if seen.len() >= MAX_CORPUS {
            break;
        }
        for rule in model.rules() {
            if let RuleOutcome::Next(next) = rule.apply(&state, &mut NoHoles) {
                let next = model.canonicalize(next);
                if seen.insert(next.clone()) {
                    queue.push_back(next.clone());
                    if seen.len() >= MAX_CORPUS {
                        break;
                    }
                }
            }
        }
    }
    let mut out: Vec<MsiState> = seen.into_iter().collect();
    out.sort(); // deterministic corpus order
    out
}

/// Times `SAMPLES` full passes over the corpus (after one warm-up) and
/// returns the median wall time in milliseconds. `f` returns a checksum so
/// the work cannot be optimized away.
fn measure(mut f: impl FnMut() -> usize) -> f64 {
    let expected = f();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let got = criterion::black_box(f());
            assert_eq!(got, expected, "nondeterministic canonicalization");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct Row {
    n: usize,
    states: usize,
    reference_ms: f64,
    orbit_ms: f64,
    speedup: f64,
    avg_candidates: f64,
}

fn main() {
    println!("group canonicalize");
    let mut rows: Vec<Row> = Vec::new();

    for &n in &SIZES {
        let states = corpus(n);
        let perms = perm_table(n);

        // Differential replay outside the timed region: identical
        // representatives on every reachable state.
        for s in &states {
            assert_eq!(
                s.canonicalize_orbit(n),
                s.canonicalize(perms),
                "orbit canonicalizer diverged from the reference at n={n}"
            );
        }

        let avg_candidates = states
            .iter()
            .map(|s| {
                OrbitPartition::of(s, n)
                    .expect("MSI states have a signature")
                    .candidate_count() as f64
            })
            .sum::<f64>()
            / states.len() as f64;

        // Fingerprint-free checksum: fold a few cheap state features so the
        // canonicalized values must actually be computed.
        let checksum = |s: &MsiState| s.net.len() + s.caches[0].got as usize;
        let reference_ms = measure(|| {
            states
                .iter()
                .map(|s| checksum(&s.canonicalize(perms)))
                .sum()
        });
        let orbit_ms = measure(|| {
            states
                .iter()
                .map(|s| checksum(&s.canonicalize_orbit(n)))
                .sum()
        });
        let speedup = reference_ms / orbit_ms.max(1e-9);

        println!(
            "  msi n={n}: {:>5} states  reference {reference_ms:9.3} ms  orbit {orbit_ms:9.3} ms  \
             ({speedup:5.1}x, avg {avg_candidates:.2} candidates vs {}!)",
            states.len(),
            n,
        );
        rows.push(Row {
            n,
            states: states.len(),
            reference_ms,
            orbit_ms,
            speedup,
            avg_candidates,
        });
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"model\": \"msi\", \"n\": {}, \"states\": {}, \"reference_ms\": {:.3}, \
             \"orbit_ms\": {:.3}, \"speedup\": {:.2}, \"avg_candidates\": {:.2}}}{}",
            r.n,
            r.states,
            r.reference_ms,
            r.orbit_ms,
            r.speedup,
            r.avg_candidates,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("]\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_canonicalize.json");
    std::fs::write(path, &json).expect("write BENCH_canonicalize.json");
    println!("wrote BENCH_canonicalize.json ({} rows)", rows.len());

    let at6 = rows.iter().find(|r| r.n == 6).expect("n=6 row");
    assert!(
        at6.speedup >= 10.0,
        "acceptance: orbit canonicalization must beat the all-permutations \
         reference ≥10x at n=6 (measured {:.1}x)",
        at6.speedup
    );
    println!(
        "n=6 speedup: {:.1}x over {} reachable states (acceptance: ≥10x)",
        at6.speedup, at6.states
    );
}
