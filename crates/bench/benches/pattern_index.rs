//! Pattern-table lookup microbench: the linear-scan reference vs the
//! indexed table (prefix trie + per-`(hole, action)` inverted index), at
//! 1k / 10k / 50k synthetic patterns over the msi_xl hole space.
//!
//! Beyond the printed table, this bench emits **BENCH_patterns.json** at the
//! workspace root — `(workload, patterns, impl, queries, wall_ms,
//! ns_per_query)` rows — so future PRs can track the lookup path's perf
//! trajectory without parsing log output (the `BENCH_checker.json` pattern
//! from the parallel-check bench). It also *asserts* along the way:
//!
//! * both implementations return identical `first_pruned_depth` answers on
//!   every query (a sampled replay of the differential suite), and
//! * the indexed sparse lookup beats the scan by ≥ 10× at 50k patterns —
//!   the acceptance bar for the index.
//!
//! ```text
//! cargo bench -p verc3-bench --bench pattern_index
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_bench::synthetic;

const SIZES: [usize; 3] = [1_000, 10_000, 50_000];
const QUERIES: usize = 1_000;
const SAMPLES: usize = 5;
const DEPTH: usize = synthetic::XL_ARITIES.len();

struct Row {
    workload: &'static str,
    patterns: usize,
    implementation: &'static str,
    wall_ms: f64,
}

impl Row {
    fn ns_per_query(&self) -> f64 {
        self.wall_ms * 1e6 / QUERIES as f64
    }
}

/// Times `SAMPLES` passes over the query set (after one warm-up) and
/// returns the median wall time in milliseconds. `f` returns a checksum so
/// the work cannot be optimized away.
fn measure(mut f: impl FnMut() -> usize) -> f64 {
    let expected = f();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let got = criterion::black_box(f());
            assert_eq!(got, expected, "nondeterministic query results");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Folds every query's `first_pruned_depth` answer into one checksum.
fn sum_depths(queries: &[Vec<u16>], lookup: impl Fn(&[u16]) -> Option<usize>) -> usize {
    queries.iter().map(|q| lookup(q).unwrap_or(DEPTH + 1)).sum()
}

fn main() {
    println!("group pattern_index");
    let mut rows: Vec<Row> = Vec::new();
    let mut sparse_50k_speedup = 0.0f64;

    for &n in &SIZES {
        // --- Sparse patterns: bucket scan vs inverted index -------------
        let patterns = synthetic::sparse_patterns(n, 0xA11CE + n as u64);
        let queries = synthetic::query_candidates(QUERIES, &patterns, 0xBEEF + n as u64);
        let (indexed, reference) = synthetic::build_sparse_tables(&patterns);

        // Differential check outside the timed region.
        for q in &queries {
            assert_eq!(
                indexed.first_pruned_depth(q, DEPTH),
                reference.first_pruned_depth(q, DEPTH),
                "index diverged from the scan reference on {q:?}"
            );
        }

        let scan_ms = measure(|| sum_depths(&queries, |q| reference.first_pruned_depth(q, DEPTH)));
        let index_ms = measure(|| sum_depths(&queries, |q| indexed.first_pruned_depth(q, DEPTH)));
        let speedup = scan_ms / index_ms.max(1e-9);
        if n == 50_000 {
            sparse_50k_speedup = speedup;
        }
        println!(
            "  sparse {n:>6} patterns: scan {scan_ms:9.3} ms  indexed {index_ms:9.3} ms  ({speedup:.1}x)"
        );
        rows.push(Row {
            workload: "sparse",
            patterns: n,
            implementation: "scan",
            wall_ms: scan_ms,
        });
        rows.push(Row {
            workload: "sparse",
            patterns: n,
            implementation: "inverted_index",
            wall_ms: index_ms,
        });

        // --- Dense prefixes: whole-prefix hash probes vs trie descent ---
        let prefixes = synthetic::dense_prefixes(n, 0xD15C0 + n as u64);
        let queries = synthetic::query_candidates(QUERIES, &[], 0xF00D + n as u64);
        let (indexed, reference) = synthetic::build_dense_tables(&prefixes);
        for q in &queries {
            assert_eq!(
                indexed.first_pruned_depth(q, DEPTH),
                reference.first_pruned_depth(q, DEPTH),
                "trie diverged from the hash reference on {q:?}"
            );
        }
        let hash_ms = measure(|| sum_depths(&queries, |q| reference.first_pruned_depth(q, DEPTH)));
        let trie_ms = measure(|| sum_depths(&queries, |q| indexed.first_pruned_depth(q, DEPTH)));
        println!(
            "  prefix {n:>6} patterns: hash {hash_ms:9.3} ms  trie    {trie_ms:9.3} ms  ({:.1}x)",
            hash_ms / trie_ms.max(1e-9)
        );
        rows.push(Row {
            workload: "prefix",
            patterns: n,
            implementation: "hash_scan",
            wall_ms: hash_ms,
        });
        rows.push(Row {
            workload: "prefix",
            patterns: n,
            implementation: "trie",
            wall_ms: trie_ms,
        });
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"workload\": \"{}\", \"patterns\": {}, \"impl\": \"{}\", \
             \"queries\": {}, \"wall_ms\": {:.3}, \"ns_per_query\": {:.1}}}{}",
            r.workload,
            r.patterns,
            r.implementation,
            QUERIES,
            r.wall_ms,
            r.ns_per_query(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("]\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_patterns.json");
    std::fs::write(path, &json).expect("write BENCH_patterns.json");
    println!("wrote BENCH_patterns.json ({} rows)", rows.len());

    assert!(
        sparse_50k_speedup >= 10.0,
        "acceptance: inverted index must beat the scan ≥10x at 50k patterns \
         (measured {sparse_50k_speedup:.1}x)"
    );
    println!("sparse 50k speedup: {sparse_50k_speedup:.1}x (acceptance: ≥10x)");
}
