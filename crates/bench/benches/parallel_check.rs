//! Parallel-checker scaling bench: wall time of one full verification at
//! 1/2/4/8 worker threads, on the checker-bound models that dominate the
//! Table I unit cost.
//!
//! Beyond the printed table, this bench emits **BENCH_checker.json** at the
//! workspace root — `(model, threads, states, transitions, wall_ms)` rows —
//! so future PRs can track the checker's perf trajectory without parsing
//! log output; `perf_gate` derives the 4-thread-over-serial
//! `parallel_speedup` ratio from these rows and holds it above an absolute
//! floor on multi-core runners. The bench also *asserts* the equivalence
//! contract along the way: every thread count must report the same verdict,
//! state count, and transition count. Thread-count clamping is disabled so
//! a row always measures exactly the parallelism it is labeled with.
//!
//! ```text
//! cargo bench -p verc3-bench --bench parallel_check
//! ```

use criterion::black_box;
use std::fmt::Write as _;
use std::time::Instant;
use verc3_mck::{Checker, CheckerOptions, TransitionSystem, Verdict};
use verc3_protocols::msi::{MsiConfig, MsiModel};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 15;

struct Row {
    model: &'static str,
    threads: usize,
    states: usize,
    transitions: usize,
    wall_ms: f64,
}

/// Times `samples` full verifications (after one warm-up) and returns the
/// median wall time together with the run's statistics.
fn measure<M: TransitionSystem>(model: &M, threads: usize) -> (f64, usize, usize) {
    let checker = Checker::new(
        CheckerOptions::default()
            .threads(threads)
            .clamp_threads(false),
    );
    let warmup = checker.run(model);
    assert_eq!(
        warmup.verdict(),
        Verdict::Success,
        "golden model must verify"
    );
    let (states, transitions) = (warmup.stats().states_visited, warmup.stats().transitions);

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let out = checker.run(model);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(black_box(out).stats().states_visited, states);
            elapsed
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[samples.len() / 2], states, transitions)
}

fn bench_model<M: TransitionSystem>(name: &'static str, model: &M, rows: &mut Vec<Row>) {
    let mut serial: Option<(usize, usize, f64)> = None;
    for threads in THREAD_COUNTS {
        let (wall_ms, states, transitions) = measure(model, threads);
        match serial {
            None => serial = Some((states, transitions, wall_ms)),
            Some((s, t, base_ms)) => {
                assert_eq!(states, s, "{name}: states diverged at {threads} threads");
                assert_eq!(
                    transitions, t,
                    "{name}: transitions diverged at {threads} threads"
                );
                println!(
                    "  {name:<28} {threads} threads: {wall_ms:8.3} ms  ({:.2}x)",
                    base_ms / wall_ms
                );
            }
        }
        if threads == 1 {
            println!("  {name:<28} 1 threads: {wall_ms:8.3} ms  (baseline, {states} states)");
        }
        rows.push(Row {
            model: name,
            threads,
            states,
            transitions,
            wall_ms,
        });
    }
}

fn main() {
    println!("group parallel_check");

    let mut rows: Vec<Row> = Vec::new();

    let msi4 = MsiModel::new(MsiConfig {
        n_caches: 4,
        ..MsiConfig::golden()
    });
    bench_model("msi_golden_4caches_sym", &msi4, &mut rows);

    let msi3_data = MsiModel::new(MsiConfig {
        data_values: true,
        ..MsiConfig::golden()
    });
    bench_model("msi_golden_3caches_data", &msi3_data, &mut rows);

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"model\": \"{}\", \"threads\": {}, \"states\": {}, \
             \"transitions\": {}, \"wall_ms\": {:.3}}}{}",
            r.model,
            r.threads,
            r.states,
            r.transitions,
            r.wall_ms,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checker.json");
    std::fs::write(path, &json).expect("write BENCH_checker.json");
    println!("wrote BENCH_checker.json ({} rows)", rows.len());
}
