//! Incremental re-verification bench: the session-based synthesis loop
//! (`SynthOptions::reuse_sessions`, the default) against the
//! per-candidate-restart baseline, on the MSI workloads.
//!
//! Beyond the printed table, this bench emits **BENCH_incremental.json** at
//! the workspace root — `(workload, mode, threads, check_threads,
//! evaluated, solutions, states_expanded, states_reused, reuse_rate,
//! wall_ms)` rows — so future PRs can track the reuse trajectory. It also
//! *asserts* the acceptance contract along the way: for every workload the
//! session loop must report identical dispatch counts, pattern counts, and
//! solution sets to the one-shot loop, while expanding **at least 30%
//! fewer** states on the serial rows.
//!
//! ```text
//! cargo bench -p verc3-bench --bench incremental_check
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_bench::run_synthesis_row_with;
use verc3_core::SynthReport;
use verc3_protocols::msi::MsiConfig;

struct Row {
    workload: &'static str,
    mode: &'static str,
    threads: usize,
    check_threads: usize,
    evaluated: u64,
    solutions: usize,
    states_expanded: u64,
    states_reused: u64,
    reuse_rate: f64,
    wall_ms: f64,
}

fn measure(
    workload: &'static str,
    config: MsiConfig,
    threads: usize,
    check_threads: usize,
    sessions: bool,
) -> (Row, SynthReport) {
    let start = Instant::now();
    let (_, report) =
        run_synthesis_row_with(workload, config, true, threads, check_threads, sessions);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = report.stats();
    let row = Row {
        workload,
        mode: if sessions { "sessions" } else { "one-shot" },
        threads,
        check_threads,
        evaluated: stats.evaluated,
        solutions: report.solutions().len(),
        states_expanded: stats.check_states_expanded,
        states_reused: stats.check_states_reused,
        reuse_rate: stats.check_reuse_rate(),
        wall_ms,
    };
    (row, report)
}

fn solution_set(report: &SynthReport) -> std::collections::BTreeSet<Vec<(String, u16)>> {
    report
        .solutions()
        .iter()
        .map(|s| {
            let mut v: Vec<(String, u16)> = s
                .assignment
                .iter()
                .map(|&(h, a)| (report.holes()[h].name.clone(), a))
                .collect();
            v.sort();
            v
        })
        .collect()
}

fn main() {
    println!("group incremental_check");
    let mut rows: Vec<Row> = Vec::new();

    for (workload, config) in [
        ("msi_small", MsiConfig::msi_small()),
        ("msi_large", MsiConfig::msi_large()),
    ] {
        // Serial acceptance pair: bit-identical results, >= 30% fewer
        // expansions.
        let (base_row, base) = measure(workload, config.clone(), 1, 1, false);
        let (sess_row, sess) = measure(workload, config.clone(), 1, 1, true);
        assert_eq!(
            sess.stats().evaluated,
            base.stats().evaluated,
            "{workload}: dispatch counts must be identical"
        );
        assert_eq!(
            sess.stats().patterns,
            base.stats().patterns,
            "{workload}: pattern counts must be identical"
        );
        assert_eq!(
            solution_set(&sess),
            solution_set(&base),
            "{workload}: solution sets must be identical"
        );
        assert!(
            (sess_row.states_expanded as f64) <= 0.7 * base_row.states_expanded as f64,
            "{workload}: expected >= 30% fewer expansions, got {} vs {}",
            sess_row.states_expanded,
            base_row.states_expanded,
        );
        println!(
            "  {workload:<10} one-shot : {:>9} states expanded, {:>8.1} ms",
            base_row.states_expanded, base_row.wall_ms
        );
        println!(
            "  {workload:<10} sessions : {:>9} states expanded, {:>9} reused \
             ({:.1}% avoided), {:>8.1} ms ({:.2}x)",
            sess_row.states_expanded,
            sess_row.states_reused,
            sess_row.reuse_rate * 100.0,
            sess_row.wall_ms,
            base_row.wall_ms / sess_row.wall_ms.max(1e-9),
        );
        rows.push(base_row);
        rows.push(sess_row);

        // Parallel-checker session row: counts stay bit-identical to the
        // serial session row (the replay guarantee composed with reuse).
        let (par_row, par) = measure(workload, config, 1, 4, true);
        assert_eq!(par.stats().evaluated, sess.stats().evaluated);
        assert_eq!(solution_set(&par), solution_set(&sess));
        println!(
            "  {workload:<10} sessions (check-threads 4): {:>9} expanded, {:.1}% reuse, {:>8.1} ms",
            par_row.states_expanded,
            par_row.reuse_rate * 100.0,
            par_row.wall_ms
        );
        rows.push(par_row);
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"workload\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"check_threads\": {}, \"evaluated\": {}, \"solutions\": {}, \
             \"states_expanded\": {}, \"states_reused\": {}, \
             \"reuse_rate\": {:.4}, \"wall_ms\": {:.3}}}{}",
            r.workload,
            r.mode,
            r.threads,
            r.check_threads,
            r.evaluated,
            r.solutions,
            r.states_expanded,
            r.states_reused,
            r.reuse_rate,
            r.wall_ms,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, &json).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json ({} rows)", rows.len());
}
