//! Model-checker throughput benchmarks: full verification of the golden
//! protocols, with and without symmetry reduction.
//!
//! These calibrate the substrate: every synthesis number in Table I is a sum
//! of checker runs, so checker time per protocol is the unit cost.

use criterion::{criterion_group, criterion_main, Criterion};
use verc3_mck::{Checker, CheckerOptions, Verdict};
use verc3_protocols::mesi::{MesiConfig, MesiModel};
use verc3_protocols::msi::{MsiConfig, MsiModel};
use verc3_protocols::vi::{ViConfig, ViModel};

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");

    let msi = MsiModel::new(MsiConfig::golden());
    group.bench_function("msi_golden_3caches_sym", |b| {
        b.iter(|| {
            let out = Checker::new(CheckerOptions::default()).run(&msi);
            assert_eq!(out.verdict(), Verdict::Success);
            out.stats().states_visited
        })
    });

    let msi_nosym = MsiModel::new(MsiConfig {
        symmetry: false,
        ..MsiConfig::golden()
    });
    group.bench_function("msi_golden_3caches_nosym", |b| {
        b.iter(|| {
            let out = Checker::new(CheckerOptions::default()).run(&msi_nosym);
            assert_eq!(out.verdict(), Verdict::Success);
            out.stats().states_visited
        })
    });

    let msi4 = MsiModel::new(MsiConfig {
        n_caches: 4,
        ..MsiConfig::golden()
    });
    group.bench_function("msi_golden_4caches_sym", |b| {
        b.iter(|| {
            Checker::new(CheckerOptions::default())
                .run(&msi4)
                .stats()
                .states_visited
        })
    });

    let mesi = MesiModel::new(MesiConfig::golden());
    group.bench_function("mesi_golden_3caches_sym", |b| {
        b.iter(|| {
            Checker::new(CheckerOptions::default())
                .run(&mesi)
                .stats()
                .states_visited
        })
    });

    let vi = ViModel::new(ViConfig {
        n_caches: 3,
        ..ViConfig::golden()
    });
    group.bench_function("vi_golden_3caches_sym", |b| {
        b.iter(|| {
            Checker::new(CheckerOptions::default())
                .run(&vi)
                .stats()
                .states_visited
        })
    });

    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
