//! Journal overhead bench: the crash-safe progress journal
//! (`SynthOptions::journal`) against the unjournaled baseline on the serial
//! pruned MSI-large row.
//!
//! Beyond the printed pair, this bench emits **BENCH_journal.json** at the
//! workspace root — `(workload, mode, evaluated, patterns, solutions,
//! wall_ms)` rows — and the perf gate pins the `none/journal` wall ratio so
//! a regression that makes journaling expensive (say, an fsync per record)
//! fails CI. It also *asserts* the crash-safety contract along the way:
//! journaling must not change evaluated counts, pattern counts, or the
//! solution set, and may cost at most 25% wall time even on a noisy runner
//! (the committed EXPERIMENTS.md measurement is under 2%).
//!
//! ```text
//! cargo bench -p verc3-bench --bench journal_overhead
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use verc3_bench::{run_synthesis_row_controlled, slug, RowControls};
use verc3_core::SynthReport;
use verc3_protocols::msi::MsiConfig;

/// Best-of-`reps` wall time (ms) for one journaling mode, plus the last
/// run's report for the identity asserts.
fn measure(
    workload: &str,
    config: &MsiConfig,
    controls: &RowControls,
    reps: usize,
) -> (f64, SynthReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (_, report) =
            run_synthesis_row_controlled(workload, config.clone(), true, 1, 1, true, controls)
                .expect("bench synthesis run");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    println!("group journal_overhead");
    let reps = 3;
    let workload = "msi_large";
    let config = MsiConfig::msi_large();

    let journal_dir =
        std::env::temp_dir().join(format!("verc3-journal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("create journal scratch dir");

    let (none_ms, none) = measure(workload, &config, &RowControls::default(), reps);
    let journaled = RowControls {
        journal_dir: Some(journal_dir.clone()),
        ..RowControls::default()
    };
    let (journal_ms, journal) = measure(workload, &config, &journaled, reps);

    // Crash safety is free in results-space: the journal must be a pure
    // observer of the search.
    assert_eq!(journal.stats().evaluated, none.stats().evaluated);
    assert_eq!(journal.stats().patterns, none.stats().patterns);
    assert_eq!(journal.solutions(), none.solutions());
    let journal_bytes = std::fs::metadata(journal_dir.join(format!("{}.vc3j", slug(workload))))
        .expect("journal written")
        .len();
    let ratio = journal_ms / none_ms.max(1e-9);
    assert!(
        ratio <= 1.25,
        "journal overhead {:.1}% exceeds the 25% bench ceiling",
        (ratio - 1.0) * 100.0
    );

    println!("  {workload:<10} none    : {none_ms:>8.1} ms");
    println!(
        "  {workload:<10} journal : {journal_ms:>8.1} ms ({:+.1}% wall, {journal_bytes} bytes)",
        (ratio - 1.0) * 100.0,
    );

    let mut json = String::from("[\n");
    for (i, (mode, ms, report)) in [("none", none_ms, &none), ("journal", journal_ms, &journal)]
        .iter()
        .enumerate()
    {
        let _ = writeln!(
            json,
            "  {{\"workload\": \"{}\", \"mode\": \"{}\", \"evaluated\": {}, \
             \"patterns\": {}, \"solutions\": {}, \"wall_ms\": {:.3}}}{}",
            workload,
            mode,
            report.stats().evaluated,
            report.stats().patterns,
            report.solutions().len(),
            ms,
            if i == 0 { "," } else { "" },
        );
    }
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_journal.json");
    std::fs::write(path, &json).expect("write BENCH_journal.json");
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!("wrote BENCH_journal.json (2 rows)");
}
