//! Shard-scaling bench: the sharded-synthesis coordinator
//! ([`verc3_core::run_sharded`]) on the MSI workloads, across shard counts
//! and with pattern exchange on versus off.
//!
//! Two claims are pinned here:
//!
//! 1. **Equivalence** — the merged solution set is identical for every
//!    shard count, with and without exchange (asserted inline, bit for
//!    bit against the single-shard run).
//! 2. **Exchange pays** — four *exchanging* shards evaluate strictly fewer
//!    candidates in total than four *isolated* shards: without exchange
//!    every shard must re-learn its peers' failure patterns by evaluating
//!    the doomed candidates itself. The reduction ratio on msi_xl
//!    (`isolated evals / exchanging evals`) is asserted `> 1` here and
//!    pinned by the perf gate against the committed baseline.
//!
//! Emits **BENCH_shard.json** at the workspace root: one
//! `(workload, shards, exchange, evaluated, skipped, patterns, solutions,
//! rounds, wall_ms)` row per configuration.
//!
//! ```text
//! cargo bench -p verc3-bench --bench shard_scaling
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;
use verc3_core::{run_sharded, PatternMode, ShardOptions, SynthOptions, SynthReport};
use verc3_protocols::msi::{MsiConfig, MsiModel};

/// The exchange-reduction floor asserted on msi_xl (and pinned by the perf
/// gate): four exchanging shards must evaluate strictly fewer candidates
/// than four isolated shards.
const XL_EXCHANGE_REDUCTION_FLOOR: f64 = 1.0;

/// Solution assignments keyed by hole name, for cross-run comparison.
fn named_solutions(report: &SynthReport) -> BTreeSet<Vec<(String, u16)>> {
    report
        .solutions()
        .iter()
        .map(|s| {
            let mut named: Vec<(String, u16)> = s
                .assignment
                .iter()
                .map(|&(h, a)| (report.holes()[h].name.clone(), a))
                .collect();
            named.sort();
            named
        })
        .collect()
}

/// Runs one sharded configuration `reps` times and keeps the rep with the
/// fewest evaluations (ties broken by wall time).
///
/// Work stealing is disabled so the evaluated counts isolate the exchange
/// effect: with stealing, which shard claims a chunk (and therefore which
/// patterns it holds when it does) depends on thread timing, adding noise
/// to the counts this bench pins. Stealing is covered by the equivalence
/// tests. Without exchange the counts are fully deterministic (one rep
/// suffices); with exchange, *when* a peer's batch lands relative to a
/// chunk claim still varies a little, so the ratio configurations take a
/// best-of-reps — the bench convention for noisy measurements.
fn measure(config: &MsiConfig, shards: usize, exchange: bool, reps: usize) -> (SynthReport, f64) {
    let model = MsiModel::new(config.clone());
    let options = SynthOptions::default().pattern_mode(PatternMode::Refined);
    let sharding = ShardOptions::default()
        .shards(shards)
        .exchange(exchange)
        .steal(false);
    let mut best: Option<(SynthReport, f64)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = run_sharded(&model, &options, &sharding).expect("sharded bench run");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let better = best.as_ref().map_or(true, |(b, b_ms)| {
            (report.stats().evaluated, ms) < (b.stats().evaluated, *b_ms)
        });
        if better {
            best = Some((report, ms));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    println!("group shard_scaling");
    let workloads = [
        ("msi_large", MsiConfig::msi_large()),
        ("msi_xl", MsiConfig::msi_xl()),
    ];
    // Shard counts with exchange on, plus the 4-shard isolated control.
    // The exchanging 4-shard run feeds the reduction ratio and is the only
    // timing-sensitive count, so it gets the extra reps.
    let configs: [(usize, bool, usize); 4] =
        [(1, true, 1), (2, true, 1), (4, true, 3), (4, false, 1)];

    let mut json = String::from("[\n");
    let mut first = true;
    for (workload, config) in workloads {
        let mut reference: Option<BTreeSet<Vec<(String, u16)>>> = None;
        let mut evals: Vec<(usize, bool, u64)> = Vec::new();
        for (shards, exchange, reps) in configs {
            let (report, ms) = measure(&config, shards, exchange, reps);
            let solutions = named_solutions(&report);
            match &reference {
                None => reference = Some(solutions),
                Some(expect) => assert_eq!(
                    &solutions, expect,
                    "{workload}: solution set diverged at shards={shards} exchange={exchange}"
                ),
            }
            evals.push((shards, exchange, report.stats().evaluated));
            println!(
                "  {workload:<10} shards={shards} exchange={:<3}: {:>8} evaluated  {:>10} skipped  {ms:>8.1} ms",
                if exchange { "on" } else { "off" },
                report.stats().evaluated,
                report.stats().skipped_by_pruning,
            );
            let _ = writeln!(
                json,
                "  {}{{\"workload\": \"{}\", \"shards\": {}, \"exchange\": \"{}\", \
                 \"evaluated\": {}, \"skipped\": {}, \"patterns\": {}, \
                 \"solutions\": {}, \"rounds\": {}, \"wall_ms\": {:.3}}}",
                if first { "" } else { ", " },
                workload,
                shards,
                if exchange { "on" } else { "off" },
                report.stats().evaluated,
                report.stats().skipped_by_pruning,
                report.stats().patterns,
                report.solutions().len(),
                report.stats().generations.len(),
                ms,
            );
            first = false;
        }

        let pick = |s: usize, x: bool| {
            evals
                .iter()
                .find(|&&(shards, exchange, _)| shards == s && exchange == x)
                .map(|&(_, _, e)| e as f64)
                .expect("configuration measured above")
        };
        let ratio = pick(4, false) / pick(4, true).max(1.0);
        println!("  {workload:<10} exchange reduction (4 isolated / 4 exchanging): {ratio:.2}x");
        if workload == "msi_xl" {
            assert!(
                ratio > XL_EXCHANGE_REDUCTION_FLOOR,
                "pattern exchange did not pay on msi_xl: 4 exchanging shards \
                 evaluated {} candidates vs {} isolated ({ratio:.2}x, floor > \
                 {XL_EXCHANGE_REDUCTION_FLOOR}x)",
                pick(4, true),
                pick(4, false),
            );
        }
    }
    json.push_str("]\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json (8 rows)");
}
