//! End-to-end synthesis benchmarks (Table I at bench-friendly scale).
//!
//! `msi_small` is the paper's 8-hole problem; `msi_tiny` and the VI/Figure-2
//! problems provide fast-iteration datapoints. The full MSI-large rows are
//! produced by the `table1` binary (they are seconds-scale and do not suit
//! Criterion's repeated sampling).

use criterion::{criterion_group, criterion_main, Criterion};
use verc3_core::{PatternMode, SynthOptions, Synthesizer};
use verc3_mck::GraphModel;
use verc3_protocols::msi::{MsiConfig, MsiModel};
use verc3_protocols::vi::{ViConfig, ViModel};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);

    group.bench_function("fig2_pruning", |b| {
        let model = GraphModel::worked_example();
        b.iter(|| {
            let r = Synthesizer::new(SynthOptions::default()).run(&model);
            assert_eq!(r.stats().evaluated, 10);
        })
    });

    group.bench_function("fig2_naive", |b| {
        let model = GraphModel::worked_example();
        b.iter(|| {
            let r = Synthesizer::new(SynthOptions::default().pruning(false)).run(&model);
            assert_eq!(r.stats().evaluated, 24);
        })
    });

    group.bench_function("vi_full_pruning", |b| {
        let model = ViModel::new(ViConfig::synth_full());
        b.iter(|| {
            Synthesizer::new(SynthOptions::default())
                .run(&model)
                .stats()
                .evaluated
        })
    });

    group.bench_function("msi_tiny_refined", |b| {
        let model = MsiModel::new(MsiConfig::msi_tiny());
        b.iter(|| {
            Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined))
                .run(&model)
                .stats()
                .evaluated
        })
    });

    group.bench_function("msi_small_refined", |b| {
        let model = MsiModel::new(MsiConfig::msi_small());
        b.iter(|| {
            let r = Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined))
                .run(&model);
            assert!(!r.solutions().is_empty());
            r.stats().evaluated
        })
    });

    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
