//! A MESI extension of the directory MSI protocol.
//!
//! The paper's future work asks to "widen the scope of the tool"; the
//! canonical next step for its case study is MESI: on a read miss with no
//! other copies, the directory grants an **Exclusive** (E) clean copy, and
//! the cache may later upgrade E→M *silently* — no messages, no directory
//! interaction — which is precisely the kind of subtle optimization that
//! breaks naïve protocol reasoning.
//!
//! The model reuses the MSI design (stalling directory, dual-purpose acks,
//! poison states): the directory tracks an E owner exactly like an M owner
//! (it cannot distinguish them, as in real MESI directories), and the
//! exclusive grant is signalled by a flag on the data message. The
//! synthesizable extension rule is the cache's reaction to an exclusive
//! grant (`IS_D + Data[excl]`), whose correct completion is the new E state
//! — a hole whose golden fill *did not exist* in the MSI library, showing
//! how a designer grows a protocol with the synthesizer's help.

use std::collections::BTreeSet;
use std::sync::Arc;
use verc3_mck::scalarset::{apply_perm_to_index, rank_keys, Symmetric};
use verc3_mck::{HoleResolver, HoleSpec, Multiset, Property, Rule, RuleOutcome, TransitionSystem};

/// Cache-controller states (MSI's seven plus Exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ECacheState {
    /// Invalid.
    I,
    /// Shared (read-only).
    S,
    /// Exclusive: the only copy, clean; may upgrade to M silently.
    E,
    /// Modified: the only copy, dirty.
    M,
    /// Read miss in flight.
    IsD,
    /// Write miss in flight (data + acks outstanding).
    ImAd,
    /// Upgrade in flight (data + acks outstanding).
    SmAd,
    /// Data received, awaiting remaining invalidation acks.
    WmA,
}

impl ECacheState {
    /// All states, in next-state action-library order (8 actions).
    pub const ALL: [ECacheState; 8] = [
        ECacheState::I,
        ECacheState::S,
        ECacheState::E,
        ECacheState::M,
        ECacheState::IsD,
        ECacheState::ImAd,
        ECacheState::SmAd,
        ECacheState::WmA,
    ];
    const NAMES: [&'static str; 8] = ["I", "S", "E", "M", "IS_D", "IM_AD", "SM_AD", "WM_A"];

    /// `true` for I, S, E, M.
    pub fn is_stable(self) -> bool {
        matches!(
            self,
            ECacheState::I | ECacheState::S | ECacheState::E | ECacheState::M
        )
    }

    /// `true` for the exclusive-permission states E and M.
    pub fn is_exclusive(self) -> bool {
        matches!(self, ECacheState::E | ECacheState::M)
    }
}

/// Directory states — identical to MSI's: the directory cannot tell an E
/// owner from an M owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EDirState {
    /// No copies.
    I,
    /// Shared copies at the tracked sharers.
    S,
    /// An exclusive (E or M) copy at the tracked owner.
    M,
    /// Busy → S (awaiting the requester's ack).
    IsB,
    /// Busy → M (awaiting the requester's ack).
    ImB,
    /// Busy → M from S (awaiting the requester's ack).
    SmB,
    /// Busy downgrading the owner (awaiting writeback + ack).
    MsB,
}

impl EDirState {
    /// `true` for I, S, M.
    pub fn is_stable(self) -> bool {
        matches!(self, EDirState::I | EDirState::S | EDirState::M)
    }
}

/// Message kinds (as MSI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EMsgKind {
    /// Read request.
    GetS,
    /// Write request.
    GetM,
    /// Forwarded read request (to the owner).
    FwdGetS,
    /// Forwarded write request (to the owner).
    FwdGetM,
    /// Invalidation.
    Inv,
    /// Data; `excl` marks an exclusive grant.
    Data,
    /// Acknowledgement (to requester or directory).
    Ack,
}

/// One in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EMsg {
    /// Message class.
    pub kind: EMsgKind,
    /// Destination agent.
    pub to: u8,
    /// Requester or sender.
    pub req: u8,
    /// Invalidation acks to collect (data to a write requester).
    pub acks: u8,
    /// Exclusive grant marker (data to a read requester).
    pub excl: bool,
}

/// Global MESI state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MesiState {
    /// Per-cache states with ack counters.
    pub caches: Vec<(ECacheState, u8, u8)>, // (state, got, need)
    /// Directory state.
    pub dir: EDirState,
    /// Tracked exclusive owner.
    pub owner: Option<u8>,
    /// Tracked sharers (bitset).
    pub sharers: u8,
    /// Outstanding MS_B completions.
    pub pending: u8,
    /// The unordered network.
    pub net: Multiset<EMsg>,
    /// Poison flag.
    pub error: bool,
}

impl MesiState {
    /// Initial state: all invalid.
    pub fn initial(n: usize) -> Self {
        MesiState {
            caches: vec![(ECacheState::I, 0, 0); n],
            dir: EDirState::I,
            owner: None,
            sharers: 0,
            pending: 0,
            net: Multiset::new(),
            error: false,
        }
    }

    /// The MESI exclusivity invariant: a cache in E or M excludes every
    /// other valid copy (S, E, or M) — strictly stronger than MSI's SWMR.
    pub fn exclusivity_holds(&self) -> bool {
        let exclusive = self.caches.iter().filter(|c| c.0.is_exclusive()).count();
        let shared = self.caches.iter().filter(|c| c.0 == ECacheState::S).count();
        exclusive <= 1 && (exclusive == 0 || shared == 0)
    }

    /// Quiescence predicate.
    pub fn is_quiescent(&self) -> bool {
        !self.error
            && self.net.is_empty()
            && self.dir.is_stable()
            && self.caches.iter().all(|c| c.0.is_stable())
    }
}

impl Symmetric for MesiState {
    fn apply_perm(&self, perm: &[u8]) -> Self {
        let n = self.caches.len();
        let mut caches = vec![(ECacheState::I, 0, 0); n];
        for (old, &line) in self.caches.iter().enumerate() {
            caches[perm[old] as usize] = line;
        }
        let mut sharers = 0u8;
        for c in 0..n as u8 {
            if self.sharers & (1 << c) != 0 {
                sharers |= 1 << apply_perm_to_index(perm, c);
            }
        }
        let net = self
            .net
            .iter()
            .map(|m| EMsg {
                kind: m.kind,
                to: if (m.to as usize) < n {
                    apply_perm_to_index(perm, m.to)
                } else {
                    m.to
                },
                req: apply_perm_to_index(perm, m.req),
                acks: m.acks,
                excl: m.excl,
            })
            .collect();
        MesiState {
            caches,
            dir: self.dir,
            owner: self.owner.map(|o| apply_perm_to_index(perm, o)),
            sharers,
            pending: self.pending,
            net,
            error: self.error,
        }
    }

    /// Ranks of the per-cache `(state, got, need)` triples: `MesiState`'s
    /// derived `Ord` compares the `caches` array first, so this signature
    /// is equivariant *and* dominant (see the `Symmetric::signature` laws).
    fn signature(&self, n: usize, keys: &mut Vec<u64>) {
        debug_assert_eq!(self.caches.len(), n);
        rank_keys(&self.caches, keys);
    }
}

/// Synthesizable MESI rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MesiRule {
    /// `IS_D` receives an exclusive data grant — the MESI extension point
    /// (2 holes; the golden fill is the new E state).
    IsDDataExcl,
    /// `IS_D` receives ordinary shared data (2 holes).
    IsDDataShared,
}

/// Configuration of a [`MesiModel`].
#[derive(Debug, Clone)]
pub struct MesiConfig {
    /// Number of caches (2..=6).
    pub n_caches: usize,
    /// Canonicalize under cache permutations.
    pub symmetry: bool,
    /// Rules whose actions are holes.
    pub holes: BTreeSet<MesiRule>,
    /// Bounded network capacity.
    pub net_capacity: usize,
}

impl Default for MesiConfig {
    fn default() -> Self {
        MesiConfig {
            n_caches: 3,
            symmetry: true,
            holes: BTreeSet::new(),
            net_capacity: 16,
        }
    }
}

impl MesiConfig {
    /// The complete protocol.
    pub fn golden() -> Self {
        MesiConfig::default()
    }

    /// Synthesize the exclusive-grant reaction (2 holes, 24 candidates).
    pub fn synth_exclusive_grant() -> Self {
        let mut cfg = MesiConfig::default();
        cfg.holes.insert(MesiRule::IsDDataExcl);
        cfg
    }

    /// Synthesize both `IS_D` completions (4 holes, 576 candidates).
    pub fn synth_read_completions() -> Self {
        let mut cfg = MesiConfig::synth_exclusive_grant();
        cfg.holes.insert(MesiRule::IsDDataShared);
        cfg
    }
}

struct MesiCore {
    dir_id: u8,
    cap: usize,
    holes: BTreeSet<MesiRule>,
    excl_resp: HoleSpec,
    excl_next: HoleSpec,
    shared_resp: HoleSpec,
    shared_next: HoleSpec,
}

/// The MESI protocol as an explorable transition system.
///
/// # Examples
///
/// ```
/// use verc3_protocols::mesi::{MesiConfig, MesiModel};
/// use verc3_mck::{Checker, CheckerOptions, Verdict};
///
/// let model = MesiModel::new(MesiConfig::golden());
/// let out = Checker::new(CheckerOptions::default()).run(&model);
/// assert_eq!(out.verdict(), Verdict::Success);
/// ```
pub struct MesiModel {
    name: String,
    config: MesiConfig,
    rules: Vec<Rule<MesiState>>,
    properties: Vec<Property<MesiState>>,
}

impl std::fmt::Debug for MesiModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MesiModel")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

fn emsg(kind: EMsgKind, to: u8, req: u8) -> EMsg {
    EMsg {
        kind,
        to,
        req,
        acks: 0,
        excl: false,
    }
}

fn esend(ns: &mut MesiState, m: EMsg, cap: usize) {
    if ns.net.len() >= cap {
        ns.error = true;
    } else {
        ns.net.insert(m);
    }
}

fn efind(s: &MesiState, to: u8, kind: EMsgKind, rank: usize) -> Option<EMsg> {
    s.net
        .iter()
        .filter(|m| m.to == to && m.kind == kind)
        .nth(rank)
        .copied()
}

impl MesiModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n_caches <= 6`.
    pub fn new(config: MesiConfig) -> Self {
        let n = config.n_caches;
        assert!((2..=6).contains(&n), "n_caches must be in 2..=6, got {n}");
        let core = Arc::new(MesiCore {
            dir_id: n as u8,
            cap: config.net_capacity,
            holes: config.holes.clone(),
            excl_resp: HoleSpec::new(
                "mesi/cache/IS_D+Data[excl]/resp",
                ["none", "send_data", "send_ack"],
            ),
            excl_next: HoleSpec::new("mesi/cache/IS_D+Data[excl]/next", ECacheState::NAMES),
            shared_resp: HoleSpec::new(
                "mesi/cache/IS_D+Data[shared]/resp",
                ["none", "send_data", "send_ack"],
            ),
            shared_next: HoleSpec::new("mesi/cache/IS_D+Data[shared]/next", ECacheState::NAMES),
        });

        let mut rules: Vec<Rule<MesiState>> = Vec::new();

        // Requests, including the silent E→M upgrade.
        for c in 0..n {
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(format!("read[{c}]"), move |s: &MesiState, _| {
                if s.error || s.caches[c].0 != ECacheState::I {
                    return RuleOutcome::Disabled;
                }
                let mut ns = s.clone();
                esend(
                    &mut ns,
                    emsg(EMsgKind::GetS, core_.dir_id, c as u8),
                    core_.cap,
                );
                ns.caches[c].0 = ECacheState::IsD;
                RuleOutcome::Next(ns)
            }));
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(format!("write[{c}]"), move |s: &MesiState, _| {
                if s.error {
                    return RuleOutcome::Disabled;
                }
                let mut ns = s.clone();
                match s.caches[c].0 {
                    ECacheState::I => {
                        esend(
                            &mut ns,
                            emsg(EMsgKind::GetM, core_.dir_id, c as u8),
                            core_.cap,
                        );
                        ns.caches[c].0 = ECacheState::ImAd;
                    }
                    ECacheState::S => {
                        esend(
                            &mut ns,
                            emsg(EMsgKind::GetM, core_.dir_id, c as u8),
                            core_.cap,
                        );
                        ns.caches[c].0 = ECacheState::SmAd;
                    }
                    // The MESI point: upgrading a clean exclusive copy is
                    // silent — no request, no directory involvement.
                    ECacheState::E => ns.caches[c].0 = ECacheState::M,
                    _ => return RuleOutcome::Disabled,
                }
                RuleOutcome::Next(ns)
            }));
        }

        // Cache deliveries.
        let kinds = [
            EMsgKind::Data,
            EMsgKind::Ack,
            EMsgKind::Inv,
            EMsgKind::FwdGetS,
            EMsgKind::FwdGetM,
        ];
        for c in 0..n {
            for kind in kinds {
                for rank in 0..n {
                    let core_ = Arc::clone(&core);
                    rules.push(Rule::new(
                        format!("cache[{c}]:recv-{kind:?}#{rank}"),
                        move |s: &MesiState, ctx| {
                            if s.error {
                                return RuleOutcome::Disabled;
                            }
                            match efind(s, c as u8, kind, rank) {
                                Some(m) => cache_deliver(&core_, s, c, m, ctx),
                                None => RuleOutcome::Disabled,
                            }
                        },
                    ));
                }
            }
        }

        // Directory deliveries.
        for kind in [
            EMsgKind::GetS,
            EMsgKind::GetM,
            EMsgKind::Data,
            EMsgKind::Ack,
        ] {
            for rank in 0..n {
                let core_ = Arc::clone(&core);
                rules.push(Rule::new(
                    format!("dir:recv-{kind:?}#{rank}"),
                    move |s: &MesiState, _ctx| {
                        if s.error {
                            return RuleOutcome::Disabled;
                        }
                        match efind(s, core_.dir_id, kind, rank) {
                            Some(m) => dir_deliver(&core_, s, m),
                            None => RuleOutcome::Disabled,
                        }
                    },
                ));
            }
        }

        let properties = vec![
            Property::invariant("MESI exclusivity", MesiState::exclusivity_holds),
            Property::invariant("no protocol error", |s: &MesiState| !s.error),
            Property::reachable("some cache reaches E", |s: &MesiState| {
                s.caches.iter().any(|c| c.0 == ECacheState::E)
            }),
            Property::reachable("some cache reaches S", |s: &MesiState| {
                s.caches.iter().any(|c| c.0 == ECacheState::S)
            }),
            Property::reachable("some cache reaches M", |s: &MesiState| {
                s.caches.iter().any(|c| c.0 == ECacheState::M)
            }),
            Property::eventually_quiescent("drains to quiescence", MesiState::is_quiescent),
        ];

        let name = format!("MESI-{n}c");
        MesiModel {
            name,
            config,
            rules,
            properties,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &MesiConfig {
        &self.config
    }
}

fn cache_deliver(
    core: &MesiCore,
    s: &MesiState,
    c: usize,
    m: EMsg,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<MesiState> {
    use ECacheState as Q;
    use EMsgKind as K;
    let (state, got, need) = s.caches[c];

    // The synthesizable read-completion rules.
    if state == Q::IsD && m.kind == K::Data {
        let rule = if m.excl {
            MesiRule::IsDDataExcl
        } else {
            MesiRule::IsDDataShared
        };
        let golden_next = if m.excl { Q::E } else { Q::S };
        let (resp, next) = if core.holes.contains(&rule) {
            let (rs, nx) = if m.excl {
                (&core.excl_resp, &core.excl_next)
            } else {
                (&core.shared_resp, &core.shared_next)
            };
            let r = ctx.choose(rs);
            let x = ctx.choose(nx);
            match (r.action(), x.action()) {
                (Some(r), Some(x)) => (r, Q::ALL[x]),
                _ => return RuleOutcome::Blocked,
            }
        } else {
            (2, golden_next) // golden: ack the directory, take the grant
        };
        let mut ns = s.clone();
        ns.net.remove(&m);
        match resp {
            0 => {}
            1 => esend(&mut ns, emsg(K::Data, core.dir_id, c as u8), core.cap),
            _ => esend(&mut ns, emsg(K::Ack, core.dir_id, c as u8), core.cap),
        }
        ns.caches[c].0 = next;
        if next.is_stable() {
            ns.caches[c].1 = 0;
            ns.caches[c].2 = 0;
        }
        return RuleOutcome::Next(ns);
    }

    // Everything else is hardwired golden MESI.
    let mut ns = s.clone();
    ns.net.remove(&m);
    match (state, m.kind) {
        (Q::S, K::Inv) => {
            esend(&mut ns, emsg(K::Ack, m.req, c as u8), core.cap);
            ns.caches[c] = (Q::I, 0, 0);
        }
        (Q::E | Q::M, K::FwdGetS) => {
            esend(&mut ns, emsg(K::Data, m.req, c as u8), core.cap);
            esend(&mut ns, emsg(K::Data, core.dir_id, c as u8), core.cap);
            ns.caches[c] = (Q::S, 0, 0);
        }
        (Q::E | Q::M, K::FwdGetM) => {
            esend(&mut ns, emsg(K::Data, m.req, c as u8), core.cap);
            ns.caches[c] = (Q::I, 0, 0);
        }
        (Q::ImAd | Q::SmAd, K::Data) => {
            if got >= m.acks {
                esend(&mut ns, emsg(K::Ack, core.dir_id, c as u8), core.cap);
                ns.caches[c] = (Q::M, 0, 0);
            } else {
                ns.caches[c] = (Q::WmA, got, m.acks);
            }
        }
        (Q::ImAd | Q::SmAd, K::Ack) => ns.caches[c].1 = got + 1,
        (Q::SmAd, K::Inv) => {
            esend(&mut ns, emsg(K::Ack, m.req, c as u8), core.cap);
            ns.caches[c] = (Q::ImAd, got, need);
        }
        (Q::WmA, K::Ack) => {
            if got + 1 >= need {
                esend(&mut ns, emsg(K::Ack, core.dir_id, c as u8), core.cap);
                ns.caches[c] = (Q::M, 0, 0);
            } else {
                ns.caches[c].1 = got + 1;
            }
        }
        _ => ns.error = true,
    }
    RuleOutcome::Next(ns)
}

fn dir_deliver(core: &MesiCore, s: &MesiState, m: EMsg) -> RuleOutcome<MesiState> {
    use EDirState as D;
    use EMsgKind as K;

    // Requests stall while busy.
    if matches!(m.kind, K::GetS | K::GetM) && !s.dir.is_stable() {
        return RuleOutcome::Disabled;
    }

    let mut ns = s.clone();
    ns.net.remove(&m);
    match (s.dir, m.kind) {
        // The MESI difference: a read miss with no copies grants Exclusive,
        // and the directory starts tracking the requester as *owner*.
        (D::I, K::GetS) => {
            esend(
                &mut ns,
                EMsg {
                    kind: K::Data,
                    to: m.req,
                    req: m.req,
                    acks: 0,
                    excl: true,
                },
                core.cap,
            );
            ns.owner = Some(m.req);
            ns.dir = D::ImB;
        }
        (D::S, K::GetS) => {
            esend(&mut ns, emsg(K::Data, m.req, m.req), core.cap);
            ns.sharers |= 1 << m.req;
            ns.dir = D::IsB;
        }
        (D::I, K::GetM) => {
            esend(&mut ns, emsg(K::Data, m.req, m.req), core.cap);
            ns.owner = Some(m.req);
            ns.sharers = 0;
            ns.dir = D::ImB;
        }
        (D::S, K::GetM) => {
            let others = ns.sharers & !(1 << m.req);
            let acks = others.count_ones() as u8;
            esend(
                &mut ns,
                EMsg {
                    kind: K::Data,
                    to: m.req,
                    req: m.req,
                    acks,
                    excl: false,
                },
                core.cap,
            );
            for sh in 0..8u8 {
                if others & (1 << sh) != 0 {
                    esend(&mut ns, emsg(K::Inv, sh, m.req), core.cap);
                }
            }
            ns.owner = Some(m.req);
            ns.sharers = 0;
            ns.dir = D::SmB;
        }
        (D::M, K::GetS) => match ns.owner {
            Some(owner) => {
                esend(&mut ns, emsg(K::FwdGetS, owner, m.req), core.cap);
                ns.sharers |= (1 << m.req) | (1 << owner);
                ns.owner = None;
                ns.pending = 2;
                ns.dir = D::MsB;
            }
            None => ns.error = true,
        },
        (D::M, K::GetM) => match ns.owner {
            Some(owner) => {
                esend(&mut ns, emsg(K::FwdGetM, owner, m.req), core.cap);
                ns.owner = Some(m.req);
                ns.dir = D::ImB;
            }
            None => ns.error = true,
        },
        (D::IsB, K::Ack) => ns.dir = D::S,
        (D::ImB | D::SmB, K::Ack) => ns.dir = D::M,
        (D::MsB, K::Data | K::Ack) => {
            ns.pending = ns.pending.saturating_sub(1);
            if m.kind == K::Data {
                ns.sharers |= 1 << m.req;
            }
            if ns.pending == 0 {
                ns.dir = D::S;
            }
        }
        _ => ns.error = true,
    }
    RuleOutcome::Next(ns)
}

impl TransitionSystem for MesiModel {
    type State = MesiState;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_states(&self) -> Vec<MesiState> {
        vec![MesiState::initial(self.config.n_caches)]
    }

    fn rules(&self) -> &[Rule<MesiState>] {
        &self.rules
    }

    fn canonicalize(&self, state: MesiState) -> MesiState {
        if self.config.symmetry {
            state.canonicalize_auto(self.config.n_caches)
        } else {
            state
        }
    }

    fn properties(&self) -> &[Property<MesiState>] {
        &self.properties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_core::{SynthOptions, Synthesizer};
    use verc3_mck::{Checker, CheckerOptions, Verdict};

    #[test]
    fn golden_mesi_verifies() {
        let model = MesiModel::new(MesiConfig::golden());
        let out = Checker::new(CheckerOptions::default()).run(&model);
        assert_eq!(
            out.verdict(),
            Verdict::Success,
            "golden MESI must verify: {:?}",
            out.failure().map(|f| f.to_string())
        );
    }

    #[test]
    fn golden_mesi_two_caches_verifies() {
        let model = MesiModel::new(MesiConfig {
            n_caches: 2,
            ..MesiConfig::golden()
        });
        let out = Checker::new(CheckerOptions::default()).run(&model);
        assert_eq!(out.verdict(), Verdict::Success);
    }

    #[test]
    fn exclusivity_is_stronger_than_swmr() {
        let mut s = MesiState::initial(3);
        s.caches[0].0 = ECacheState::E;
        assert!(s.exclusivity_holds());
        s.caches[1].0 = ECacheState::S;
        assert!(
            !s.exclusivity_holds(),
            "E plus a reader violates MESI exclusivity"
        );
        s.caches[0].0 = ECacheState::S;
        assert!(s.exclusivity_holds());
    }

    #[test]
    fn synthesizes_the_exclusive_state() {
        let model = MesiModel::new(MesiConfig::synth_exclusive_grant());
        let report = Synthesizer::new(SynthOptions::default()).run(&model);
        assert_eq!(report.naive_candidate_space(), 24);
        assert_eq!(report.solutions().len(), 1);
        assert_eq!(
            report.solutions()[0].display_named(report.holes()),
            "⟨ mesi/cache/IS_D+Data[excl]/resp@send_ack, mesi/cache/IS_D+Data[excl]/next@E ⟩",
            "the synthesizer must (re)discover the Exclusive state"
        );
    }

    #[test]
    fn synthesizes_both_read_completions() {
        let model = MesiModel::new(MesiConfig::synth_read_completions());
        let report = Synthesizer::new(SynthOptions::default()).run(&model);
        assert_eq!(report.naive_candidate_space(), 576);
        assert_eq!(
            report.solutions().len(),
            1,
            "E for exclusive grants, S for shared data"
        );
        let named = report.solutions()[0].display_named(report.holes());
        assert!(named.contains("[excl]/next@E"), "{named}");
        assert!(named.contains("[shared]/next@S"), "{named}");
    }
}
