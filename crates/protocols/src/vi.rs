//! A minimal VI (Valid/Invalid) coherence protocol.
//!
//! The smallest realistic instance of the paper's methodology: a single
//! *Valid* state grants read/write permission to one cache at a time; the
//! directory forwards invalidations to migrate the copy. One cache transient
//! (`IV_D`, awaiting data) and one directory transient (`B`, awaiting the
//! completion ack) suffice — and their actions make a 2-rule, 5-hole
//! synthesis problem with a 162-candidate space, ideal for quickstarts and
//! unit tests.
//!
//! The model deliberately mirrors the MSI module's structure (stalling
//! directory, dual-purpose ack, poison states for protocol errors) at a
//! fraction of the size; read it first if the MSI model feels dense.

use std::collections::BTreeSet;
use std::sync::Arc;
use verc3_mck::scalarset::{apply_perm_to_index, rank_keys, Symmetric};
use verc3_mck::{HoleResolver, HoleSpec, Multiset, Property, Rule, RuleOutcome, TransitionSystem};

/// Cache-controller states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VCacheState {
    /// No copy.
    I,
    /// The (single) valid read/write copy.
    V,
    /// Get issued, awaiting data.
    IvD,
}

impl VCacheState {
    /// All states, in next-state action-library order.
    pub const ALL: [VCacheState; 3] = [VCacheState::I, VCacheState::V, VCacheState::IvD];
    const NAMES: [&'static str; 3] = ["I", "V", "IV_D"];
}

/// Directory states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VDirState {
    /// No cached copy.
    I,
    /// A cache holds the valid copy.
    V,
    /// Busy: transaction in flight, requests stall.
    B,
}

impl VDirState {
    /// All states, in next-state action-library order.
    pub const ALL: [VDirState; 3] = [VDirState::I, VDirState::V, VDirState::B];
    const NAMES: [&'static str; 3] = ["I", "V", "B"];
}

/// Message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VMsgKind {
    /// Request for the valid copy, cache → directory.
    Get,
    /// Invalidate-and-forward, directory → current owner.
    Inv,
    /// The data, directory/owner → requester.
    Data,
    /// Completion ack, requester → directory.
    Ack,
}

/// One in-flight message; `req` is the requester (or sender, for acks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VMsg {
    /// Message class.
    pub kind: VMsgKind,
    /// Destination agent (cache index or the directory id `n`).
    pub to: u8,
    /// Requester / sender cache index.
    pub req: u8,
}

/// Global state of the VI protocol.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViState {
    /// Per-cache controller states.
    pub caches: Vec<VCacheState>,
    /// Directory state.
    pub dir: VDirState,
    /// Tracked owner of the valid copy.
    pub owner: Option<u8>,
    /// The unordered network.
    pub net: Multiset<VMsg>,
    /// Poison flag: an agent received an unexpected message.
    pub error: bool,
}

impl ViState {
    /// Initial state: everything invalid.
    pub fn initial(n: usize) -> Self {
        ViState {
            caches: vec![VCacheState::I; n],
            dir: VDirState::I,
            owner: None,
            net: Multiset::new(),
            error: false,
        }
    }

    /// At most one valid copy exists — the protocol's core invariant.
    pub fn single_valid_copy(&self) -> bool {
        self.caches.iter().filter(|&&c| c == VCacheState::V).count() <= 1
    }

    /// All controllers stable and the network drained.
    pub fn is_quiescent(&self) -> bool {
        !self.error
            && self.net.is_empty()
            && self.dir != VDirState::B
            && self.caches.iter().all(|&c| c != VCacheState::IvD)
    }
}

impl Symmetric for ViState {
    fn apply_perm(&self, perm: &[u8]) -> Self {
        let n = self.caches.len();
        let mut caches = vec![VCacheState::I; n];
        for (old, &c) in self.caches.iter().enumerate() {
            caches[perm[old] as usize] = c;
        }
        let net = self
            .net
            .iter()
            .map(|m| VMsg {
                kind: m.kind,
                to: if (m.to as usize) < n {
                    apply_perm_to_index(perm, m.to)
                } else {
                    m.to
                },
                req: apply_perm_to_index(perm, m.req),
            })
            .collect();
        ViState {
            caches,
            dir: self.dir,
            owner: self.owner.map(|o| apply_perm_to_index(perm, o)),
            net,
            error: self.error,
        }
    }

    /// Ranks of the per-cache states: `ViState`'s derived `Ord` compares
    /// the `caches` array first, so this signature is equivariant *and*
    /// dominant (see the `Symmetric::signature` laws).
    fn signature(&self, n: usize, keys: &mut Vec<u64>) {
        debug_assert_eq!(self.caches.len(), n);
        rank_keys(&self.caches, keys);
    }
}

/// Which transient rules are synthesis holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViRule {
    /// Cache `IV_D` receives data (2 holes: response × next state).
    CacheIvDData,
    /// Directory `B` receives the completion ack (3 holes: response × next
    /// state × track).
    DirBAck,
}

/// Configuration of a [`ViModel`].
#[derive(Debug, Clone)]
pub struct ViConfig {
    /// Number of caches (2..=6).
    pub n_caches: usize,
    /// Canonicalize under cache permutations.
    pub symmetry: bool,
    /// Rules whose actions are synthesis holes.
    pub holes: BTreeSet<ViRule>,
}

impl Default for ViConfig {
    fn default() -> Self {
        ViConfig {
            n_caches: 2,
            symmetry: true,
            holes: BTreeSet::new(),
        }
    }
}

impl ViConfig {
    /// The complete protocol (verification only).
    pub fn golden() -> Self {
        ViConfig::default()
    }

    /// The quickstart synthesis problem: the cache `IV_D+Data` rule
    /// (2 holes, 9 candidates).
    pub fn synth_cache() -> Self {
        let mut cfg = ViConfig::default();
        cfg.holes.insert(ViRule::CacheIvDData);
        cfg
    }

    /// Both transient rules (5 holes, 162 candidates).
    pub fn synth_full() -> Self {
        let mut cfg = ViConfig::synth_cache();
        cfg.holes.insert(ViRule::DirBAck);
        cfg
    }
}

struct ViCore {
    dir_id: u8,
    holes: BTreeSet<ViRule>,
    cache_resp: HoleSpec,
    cache_next: HoleSpec,
    dir_resp: HoleSpec,
    dir_next: HoleSpec,
    dir_track: HoleSpec,
}

/// The VI protocol as an explorable transition system.
///
/// # Examples
///
/// ```
/// use verc3_protocols::vi::{ViConfig, ViModel};
/// use verc3_core::{SynthOptions, Synthesizer};
///
/// let model = ViModel::new(ViConfig::synth_cache());
/// let report = Synthesizer::new(SynthOptions::default()).run(&model);
/// assert_eq!(report.solutions().len(), 1); // ack the directory, go to V
/// ```
pub struct ViModel {
    name: String,
    config: ViConfig,
    rules: Vec<Rule<ViState>>,
    properties: Vec<Property<ViState>>,
}

impl std::fmt::Debug for ViModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViModel")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ViModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n_caches <= 6`.
    pub fn new(config: ViConfig) -> Self {
        let n = config.n_caches;
        assert!((2..=6).contains(&n), "n_caches must be in 2..=6, got {n}");
        let core = Arc::new(ViCore {
            dir_id: n as u8,
            holes: config.holes.clone(),
            cache_resp: HoleSpec::new("vi/cache/IV_D+Data/resp", ["none", "send_data", "send_ack"]),
            cache_next: HoleSpec::new("vi/cache/IV_D+Data/next", VCacheState::NAMES),
            dir_resp: HoleSpec::new("vi/dir/B+Ack/resp", ["none", "send_data", "fwd_inv"]),
            dir_next: HoleSpec::new("vi/dir/B+Ack/next", VDirState::NAMES),
            dir_track: HoleSpec::new("vi/dir/B+Ack/track", ["none", "set_owner"]),
        });

        let mut rules: Vec<Rule<ViState>> = Vec::new();

        // Requests: a cache in I asks for the copy.
        for c in 0..n {
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(
                format!("access[{c}]"),
                move |s: &ViState, _ctx| {
                    if s.error || s.caches[c] != VCacheState::I {
                        return RuleOutcome::Disabled;
                    }
                    let mut ns = s.clone();
                    ns.net.insert(VMsg {
                        kind: VMsgKind::Get,
                        to: core_.dir_id,
                        req: c as u8,
                    });
                    ns.caches[c] = VCacheState::IvD;
                    RuleOutcome::Next(ns)
                },
            ));
        }

        // Cache deliveries.
        for c in 0..n {
            for kind in [VMsgKind::Data, VMsgKind::Inv] {
                let core_ = Arc::clone(&core);
                rules.push(Rule::new(
                    format!("cache[{c}]:recv-{kind:?}"),
                    move |s: &ViState, ctx| cache_deliver(&core_, s, c, kind, ctx),
                ));
            }
        }

        // Directory deliveries.
        for kind in [VMsgKind::Get, VMsgKind::Ack] {
            for rank in 0..n {
                let core_ = Arc::clone(&core);
                rules.push(Rule::new(
                    format!("dir:recv-{kind:?}#{rank}"),
                    move |s: &ViState, ctx| dir_deliver(&core_, s, kind, rank, ctx),
                ));
            }
        }

        let properties = vec![
            Property::invariant("single valid copy", ViState::single_valid_copy),
            Property::invariant("no protocol error", |s: &ViState| !s.error),
            Property::reachable("some cache reaches V", |s: &ViState| {
                s.caches.contains(&VCacheState::V)
            }),
            Property::eventually_quiescent("drains to quiescence", ViState::is_quiescent),
        ];

        let name = format!("VI-{n}c");
        ViModel {
            name,
            config,
            rules,
            properties,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ViConfig {
        &self.config
    }
}

fn find_msg(s: &ViState, to: u8, kind: VMsgKind, rank: usize) -> Option<VMsg> {
    s.net
        .iter()
        .filter(|m| m.to == to && m.kind == kind)
        .nth(rank)
        .copied()
}

fn cache_deliver(
    core: &ViCore,
    s: &ViState,
    c: usize,
    kind: VMsgKind,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<ViState> {
    if s.error {
        return RuleOutcome::Disabled;
    }
    let Some(m) = find_msg(s, c as u8, kind, 0) else {
        return RuleOutcome::Disabled;
    };

    match (s.caches[c], kind) {
        // The synthesizable transient: data arrives for our request.
        (VCacheState::IvD, VMsgKind::Data) => {
            let (resp, next) = if core.holes.contains(&ViRule::CacheIvDData) {
                let r = ctx.choose(&core.cache_resp);
                let x = ctx.choose(&core.cache_next);
                match (r.action(), x.action()) {
                    (Some(r), Some(x)) => (r, VCacheState::ALL[x]),
                    _ => return RuleOutcome::Blocked,
                }
            } else {
                (2, VCacheState::V) // golden: ack the directory, become V
            };
            let mut ns = s.clone();
            ns.net.remove(&m);
            match resp {
                0 => {}
                1 => {
                    ns.net.insert(VMsg {
                        kind: VMsgKind::Data,
                        to: core.dir_id,
                        req: c as u8,
                    });
                }
                _ => {
                    ns.net.insert(VMsg {
                        kind: VMsgKind::Ack,
                        to: core.dir_id,
                        req: c as u8,
                    });
                }
            }
            ns.caches[c] = next;
            RuleOutcome::Next(ns)
        }
        // Hardwired: the owner surrenders the copy, forwarding the data.
        (VCacheState::V, VMsgKind::Inv) => {
            let mut ns = s.clone();
            ns.net.remove(&m);
            ns.net.insert(VMsg {
                kind: VMsgKind::Data,
                to: m.req,
                req: c as u8,
            });
            ns.caches[c] = VCacheState::I;
            RuleOutcome::Next(ns)
        }
        _ => {
            let mut ns = s.clone();
            ns.net.remove(&m);
            ns.error = true;
            RuleOutcome::Next(ns)
        }
    }
}

fn dir_deliver(
    core: &ViCore,
    s: &ViState,
    kind: VMsgKind,
    rank: usize,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<ViState> {
    if s.error {
        return RuleOutcome::Disabled;
    }
    let Some(m) = find_msg(s, core.dir_id, kind, rank) else {
        return RuleOutcome::Disabled;
    };

    match (s.dir, kind) {
        // Requests stall while busy.
        (VDirState::B, VMsgKind::Get) => RuleOutcome::Disabled,
        (VDirState::I, VMsgKind::Get) => {
            let mut ns = s.clone();
            ns.net.remove(&m);
            ns.net.insert(VMsg {
                kind: VMsgKind::Data,
                to: m.req,
                req: m.req,
            });
            ns.owner = Some(m.req);
            ns.dir = VDirState::B;
            RuleOutcome::Next(ns)
        }
        (VDirState::V, VMsgKind::Get) => {
            let mut ns = s.clone();
            ns.net.remove(&m);
            match ns.owner {
                Some(owner) => {
                    ns.net.insert(VMsg {
                        kind: VMsgKind::Inv,
                        to: owner,
                        req: m.req,
                    });
                    ns.owner = Some(m.req);
                    ns.dir = VDirState::B;
                }
                None => ns.error = true,
            }
            RuleOutcome::Next(ns)
        }
        // The synthesizable transient: the requester's completion ack.
        (VDirState::B, VMsgKind::Ack) => {
            let (resp, next, track) = if core.holes.contains(&ViRule::DirBAck) {
                let r = ctx.choose(&core.dir_resp);
                let x = ctx.choose(&core.dir_next);
                let t = ctx.choose(&core.dir_track);
                match (r.action(), x.action(), t.action()) {
                    (Some(r), Some(x), Some(t)) => (r, VDirState::ALL[x], t),
                    _ => return RuleOutcome::Blocked,
                }
            } else {
                (0, VDirState::V, 0) // golden: nothing to send, back to V
            };
            let mut ns = s.clone();
            ns.net.remove(&m);
            match resp {
                0 => {}
                1 => {
                    ns.net.insert(VMsg {
                        kind: VMsgKind::Data,
                        to: m.req,
                        req: m.req,
                    });
                }
                _ => match ns.owner {
                    Some(owner) => {
                        ns.net.insert(VMsg {
                            kind: VMsgKind::Inv,
                            to: owner,
                            req: m.req,
                        });
                    }
                    None => ns.error = true,
                },
            }
            if track == 1 {
                ns.owner = Some(m.req);
            }
            ns.dir = next;
            RuleOutcome::Next(ns)
        }
        _ => {
            let mut ns = s.clone();
            ns.net.remove(&m);
            ns.error = true;
            RuleOutcome::Next(ns)
        }
    }
}

impl TransitionSystem for ViModel {
    type State = ViState;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_states(&self) -> Vec<ViState> {
        vec![ViState::initial(self.config.n_caches)]
    }

    fn rules(&self) -> &[Rule<ViState>] {
        &self.rules
    }

    fn canonicalize(&self, state: ViState) -> ViState {
        if self.config.symmetry {
            state.canonicalize_auto(self.config.n_caches)
        } else {
            state
        }
    }

    fn properties(&self) -> &[Property<ViState>] {
        &self.properties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_core::{SynthOptions, Synthesizer};
    use verc3_mck::{Checker, CheckerOptions, Verdict};

    #[test]
    fn golden_vi_verifies() {
        let model = ViModel::new(ViConfig::golden());
        let out = Checker::new(CheckerOptions::default()).run(&model);
        assert_eq!(
            out.verdict(),
            Verdict::Success,
            "golden VI must verify: {:?}",
            out.failure().map(|f| f.to_string())
        );
    }

    #[test]
    fn golden_vi_three_caches_verifies() {
        let model = ViModel::new(ViConfig {
            n_caches: 3,
            ..ViConfig::golden()
        });
        let out = Checker::new(CheckerOptions::default()).run(&model);
        assert_eq!(out.verdict(), Verdict::Success);
    }

    #[test]
    fn synth_cache_rule_has_unique_solution() {
        let model = ViModel::new(ViConfig::synth_cache());
        let report = Synthesizer::new(SynthOptions::default()).run(&model);
        assert_eq!(report.holes().len(), 2);
        assert_eq!(report.naive_candidate_space(), 9);
        assert_eq!(report.solutions().len(), 1);
        let sol = &report.solutions()[0];
        assert_eq!(
            sol.display_named(report.holes()),
            "⟨ vi/cache/IV_D+Data/resp@send_ack, vi/cache/IV_D+Data/next@V ⟩"
        );
    }

    #[test]
    fn synth_full_finds_golden() {
        let model = ViModel::new(ViConfig::synth_full());
        let report = Synthesizer::new(SynthOptions::default()).run(&model);
        assert_eq!(report.holes().len(), 5);
        assert_eq!(report.naive_candidate_space(), 162);
        assert!(!report.solutions().is_empty());
        // Every solution must include the unique cache-side fill.
        for sol in report.solutions() {
            let named = sol.display_named(report.holes());
            assert!(named.contains("IV_D+Data/resp@send_ack"), "{named}");
            assert!(named.contains("IV_D+Data/next@V"), "{named}");
        }
    }

    #[test]
    fn pruning_and_naive_agree_on_vi() {
        let model = ViModel::new(ViConfig::synth_full());
        let pruned = Synthesizer::new(SynthOptions::default()).run(&model);
        let naive = Synthesizer::new(SynthOptions::default().pruning(false)).run(&model);
        assert_eq!(
            naive.stats().evaluated as u128,
            naive.naive_candidate_space()
        );
        let key = |r: &verc3_core::SynthReport| {
            let mut v: Vec<String> = r
                .solutions()
                .iter()
                .map(|s| s.display_named(r.holes()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&pruned), key(&naive));
    }
}
