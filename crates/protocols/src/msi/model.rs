//! The directory-based MSI transition system.
//!
//! [`MsiModel`] implements [`TransitionSystem`] for the protocol of the
//! paper's Figure 3 over an unordered network, with a configurable subset of
//! transient-state rules left as synthesis holes (see
//! [`MsiConfig`] and the named configurations in [`super::skeleton`]).
//!
//! Rule inventory (all parameterized over the symmetric cache array):
//!
//! * **request rules** — a cache in a stable state non-deterministically
//!   issues a read (`GetS`) or write (`GetM`);
//! * **cache delivery rules** — one rule per (cache, message kind,
//!   occurrence rank) consuming a matching message from the network
//!   multiset; occurrence ranks make concurrent same-kind deliveries (e.g.
//!   two invalidation acks from different sharers) individually explorable;
//! * **directory delivery rules** — likewise for the directory; requests
//!   arriving while the directory is busy are *stalled* (left in the
//!   network), which is how the paper's serialization discipline appears in
//!   the model.
//!
//! Unexpected messages, forwards without a tracked owner, and network
//! overflow move the state into a poison configuration whose invariant
//! violation carries the full trace.

use super::actions::{
    CacheResponse, CacheRule, DirResponse, DirRule, DirTrack, CACHE_NEXT_NAMES, DIR_NEXT_NAMES,
};
use super::types::{CacheState, DirState, Msg, MsgKind, MsiState, ProtocolError};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;
use verc3_mck::scalarset::Symmetric;
use verc3_mck::{HoleResolver, HoleSpec, Property, Rule, RuleOutcome, TransitionSystem};

/// Configuration of an [`MsiModel`]: process count, symmetry, and which
/// transient rules are synthesis holes.
#[derive(Debug, Clone)]
pub struct MsiConfig {
    /// Number of caches (2..=6; the paper-scale experiments use 3).
    pub n_caches: usize,
    /// Canonicalize states under cache-index permutations (Ip & Dill).
    pub symmetry: bool,
    /// Bounded network capacity; exceeding it poisons the state. Runaway
    /// candidates are thereby guaranteed a finite (failing) state space.
    pub net_capacity: usize,
    /// Cache-controller transient rules whose actions are holes.
    pub cache_holes: BTreeSet<CacheRule>,
    /// Directory transient rules whose actions are holes.
    pub dir_holes: BTreeSet<DirRule>,
    /// Check the eventually-quiescent liveness property.
    pub liveness: bool,
    /// Check the "all stable states visited" reachability obligations the
    /// paper added to exclude degenerate protocols (§III).
    pub reachability: bool,
    /// Track data values: stores produce fresh values (mod 4), data messages
    /// carry them, and a data-integrity invariant requires every valid copy
    /// to hold the last written value. Enlarges the state space and catches
    /// staleness bugs that message-shape properties miss.
    pub data_values: bool,
}

impl Default for MsiConfig {
    fn default() -> Self {
        MsiConfig {
            n_caches: 3,
            symmetry: true,
            net_capacity: 16,
            cache_holes: BTreeSet::new(),
            dir_holes: BTreeSet::new(),
            liveness: true,
            reachability: true,
            data_values: false,
        }
    }
}

impl MsiConfig {
    /// Number of holes this configuration exposes to the synthesizer
    /// (2 per cache rule, 3 per directory rule).
    pub fn hole_count(&self) -> usize {
        self.cache_holes.len() * 2 + self.dir_holes.len() * 3
    }

    /// Size of the naïve candidate space: the product of the hole arities.
    pub fn candidate_space(&self) -> u128 {
        let cache: u128 = (3u128 * 7).pow(self.cache_holes.len() as u32);
        let dir: u128 = (5u128 * 7 * 3).pow(self.dir_holes.len() as u32);
        cache * dir
    }

    /// The full hole table this configuration induces, as `(name, arity)`
    /// pairs — the same names the model registers during synthesis. Used by
    /// harnesses that need to enumerate or sample candidates without running
    /// discovery (e.g. the naïve-baseline extrapolation for MSI-large).
    pub fn hole_space(&self) -> Vec<(String, usize)> {
        let mut out = Vec::with_capacity(self.hole_count());
        for &rule in &self.cache_holes {
            let stem = rule.stem();
            out.push((format!("{stem}/resp"), 3));
            out.push((format!("{stem}/next"), 7));
        }
        for &rule in &self.dir_holes {
            let stem = rule.stem();
            out.push((format!("{stem}/resp"), 5));
            out.push((format!("{stem}/next"), 7));
            out.push((format!("{stem}/track"), 3));
        }
        out
    }
}

/// Immutable data shared by all rule closures.
struct Core {
    dir_id: u8,
    cap: usize,
    data: bool,
    cache_holes: BTreeSet<CacheRule>,
    dir_holes: BTreeSet<DirRule>,
    cache_specs: BTreeMap<CacheRule, (HoleSpec, HoleSpec)>,
    dir_specs: BTreeMap<DirRule, (HoleSpec, HoleSpec, HoleSpec)>,
}

/// The MSI protocol as an explorable transition system.
///
/// # Examples
///
/// Verify the complete (hole-free) protocol:
///
/// ```
/// use verc3_protocols::msi::{MsiConfig, MsiModel};
/// use verc3_mck::{Checker, CheckerOptions, Verdict};
///
/// let model = MsiModel::new(MsiConfig::default());
/// let outcome = Checker::new(CheckerOptions::default()).run(&model);
/// assert_eq!(outcome.verdict(), Verdict::Success);
/// ```
pub struct MsiModel {
    name: String,
    config: MsiConfig,
    rules: Vec<Rule<MsiState>>,
    properties: Vec<Property<MsiState>>,
}

impl std::fmt::Debug for MsiModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsiModel")
            .field("config", &self.config)
            .field("rules", &self.rules.len())
            .finish_non_exhaustive()
    }
}

impl MsiModel {
    /// Builds the model for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n_caches <= 6` (one cache cannot exercise
    /// sharing; more than six explodes both the bitset and the permutation
    /// group for no modelling benefit).
    pub fn new(config: MsiConfig) -> Self {
        let n = config.n_caches;
        assert!((2..=6).contains(&n), "n_caches must be in 2..=6, got {n}");

        let mut cache_specs = BTreeMap::new();
        for &rule in &config.cache_holes {
            cache_specs.insert(rule, cache_hole_specs(rule));
        }
        let mut dir_specs = BTreeMap::new();
        for &rule in &config.dir_holes {
            dir_specs.insert(rule, dir_hole_specs(rule));
        }

        let core = Arc::new(Core {
            dir_id: n as u8,
            cap: config.net_capacity,
            data: config.data_values,
            cache_holes: config.cache_holes.clone(),
            dir_holes: config.dir_holes.clone(),
            cache_specs,
            dir_specs,
        });

        let mut rules: Vec<Rule<MsiState>> = Vec::new();

        // --- Request rules -------------------------------------------------
        for c in 0..n {
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(
                format!("read[{c}]"),
                move |s: &MsiState, _ctx| {
                    if s.error.is_some() || s.caches[c].state != CacheState::I {
                        return RuleOutcome::Disabled;
                    }
                    let mut ns = s.clone();
                    send(
                        &mut ns,
                        msg(MsgKind::GetS, core_.dir_id, c as u8, 0),
                        core_.cap,
                    );
                    ns.caches[c].state = CacheState::IsD;
                    RuleOutcome::Next(ns)
                },
            ));

            let core_ = Arc::clone(&core);
            rules.push(Rule::new(
                format!("write[{c}]"),
                move |s: &MsiState, _ctx| {
                    if s.error.is_some() {
                        return RuleOutcome::Disabled;
                    }
                    let from = s.caches[c].state;
                    if from != CacheState::I && from != CacheState::S {
                        return RuleOutcome::Disabled;
                    }
                    let mut ns = s.clone();
                    send(
                        &mut ns,
                        msg(MsgKind::GetM, core_.dir_id, c as u8, 0),
                        core_.cap,
                    );
                    ns.caches[c].state = if from == CacheState::I {
                        CacheState::ImAd
                    } else {
                        CacheState::SmAd
                    };
                    RuleOutcome::Next(ns)
                },
            ));
        }

        // Repeated stores: a cache already in M may write again, producing a
        // fresh value (value-tracking configurations only; otherwise the
        // rule would be an invisible self-loop).
        if config.data_values {
            for c in 0..n {
                let core_ = Arc::clone(&core);
                rules.push(Rule::new(
                    format!("store[{c}]"),
                    move |s: &MsiState, _ctx| {
                        if s.error.is_some() || s.caches[c].state != CacheState::M {
                            return RuleOutcome::Disabled;
                        }
                        let mut ns = s.clone();
                        let fresh = (ns.last_written + 1) % 4;
                        ns.caches[c].val = fresh;
                        ns.last_written = fresh;
                        let _ = &core_; // shared ownership keeps rule lifetimes uniform
                        RuleOutcome::Next(ns)
                    },
                ));
            }
        }

        // --- Cache delivery rules ------------------------------------------
        let cache_kinds = [
            MsgKind::Data,
            MsgKind::Ack,
            MsgKind::Inv,
            MsgKind::FwdGetS,
            MsgKind::FwdGetM,
        ];
        for c in 0..n {
            for kind in cache_kinds {
                for rank in 0..n {
                    let core_ = Arc::clone(&core);
                    let name = format!("cache[{c}]:recv-{kind:?}#{rank}");
                    rules.push(Rule::new(name, move |s: &MsiState, ctx| {
                        if s.error.is_some() {
                            return RuleOutcome::Disabled;
                        }
                        match find_nth(s, c as u8, kind, rank) {
                            Some(m) => cache_deliver(&core_, s, c, m, ctx),
                            None => RuleOutcome::Disabled,
                        }
                    }));
                }
            }
        }

        // --- Directory delivery rules --------------------------------------
        let dir_kinds = [MsgKind::GetS, MsgKind::GetM, MsgKind::Data, MsgKind::Ack];
        for kind in dir_kinds {
            for rank in 0..n {
                let core_ = Arc::clone(&core);
                let name = format!("dir:recv-{kind:?}#{rank}");
                rules.push(Rule::new(name, move |s: &MsiState, ctx| {
                    if s.error.is_some() {
                        return RuleOutcome::Disabled;
                    }
                    match find_nth(s, core_.dir_id, kind, rank) {
                        Some(m) => dir_deliver(&core_, s, m, ctx),
                        None => RuleOutcome::Disabled,
                    }
                }));
            }
        }

        // --- Properties -----------------------------------------------------
        let mut properties = vec![
            Property::invariant("SWMR (single writer / multiple readers)", |s: &MsiState| {
                s.swmr_holds()
            }),
            Property::invariant("no protocol error", |s: &MsiState| s.error.is_none()),
        ];
        if config.reachability {
            properties.push(Property::reachable(
                "some cache reaches S",
                |s: &MsiState| s.count_cache_state(CacheState::S) > 0,
            ));
            properties.push(Property::reachable(
                "some cache reaches M",
                |s: &MsiState| s.count_cache_state(CacheState::M) > 0,
            ));
            properties.push(Property::reachable(
                "directory reaches S",
                |s: &MsiState| s.dir.state == DirState::S,
            ));
            properties.push(Property::reachable(
                "directory reaches M",
                |s: &MsiState| s.dir.state == DirState::M,
            ));
        }
        if config.liveness {
            properties.push(Property::eventually_quiescent(
                "system can always drain to quiescence",
                |s: &MsiState| s.is_quiescent(),
            ));
        }
        if config.data_values {
            properties.push(Property::invariant(
                "data integrity (valid copies hold the last written value)",
                |s: &MsiState| s.data_integrity_holds(),
            ));
        }

        let holes = config.cache_holes.len() * 2 + config.dir_holes.len() * 3;
        let name = format!(
            "MSI-{n}c{}{}{}",
            if config.data_values { "+data" } else { "" },
            if config.symmetry { "" } else { "-nosym" },
            if holes > 0 {
                format!(" skeleton ({holes} holes)")
            } else {
                String::new()
            },
        );
        MsiModel {
            name,
            config,
            rules,
            properties,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &MsiConfig {
        &self.config
    }
}

impl TransitionSystem for MsiModel {
    type State = MsiState;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_states(&self) -> Vec<MsiState> {
        vec![MsiState::initial(self.config.n_caches)]
    }

    fn rules(&self) -> &[Rule<MsiState>] {
        &self.rules
    }

    fn canonicalize(&self, state: MsiState) -> MsiState {
        if self.config.symmetry {
            // Dense sweep at paper scale (n ≤ 3), orbit-pruning search
            // beyond — identical representatives either way, so every
            // golden count is independent of the crossover. The spare
            // candidate buffer persists across states per checker thread,
            // so the expand hot loop canonicalizes without allocating.
            thread_local! {
                static SPARE: std::cell::RefCell<Option<MsiState>> =
                    const { std::cell::RefCell::new(None) };
            }
            SPARE.with(|spare| {
                state.canonicalize_auto_with(self.config.n_caches, &mut spare.borrow_mut())
            })
        } else {
            state
        }
    }

    fn properties(&self) -> &[Property<MsiState>] {
        &self.properties
    }
}

// --- Message helpers -------------------------------------------------------

fn msg(kind: MsgKind, to: u8, req: u8, acks: u8) -> Msg {
    Msg {
        kind,
        to,
        req,
        acks,
        val: 0,
    }
}

fn msg_val(kind: MsgKind, to: u8, req: u8, acks: u8, val: u8) -> Msg {
    Msg {
        kind,
        to,
        req,
        acks,
        val,
    }
}

/// Sends a message, poisoning the state on overflow.
fn send(ns: &mut MsiState, m: Msg, cap: usize) {
    if ns.net.len() >= cap {
        poison(ns, ProtocolError::NetworkOverflow);
    } else {
        ns.net.insert(m);
    }
}

fn poison(ns: &mut MsiState, e: ProtocolError) {
    if ns.error.is_none() {
        ns.error = Some(e);
    }
}

/// Finds the `rank`-th message (in canonical network order) addressed to
/// `to` with the given kind.
fn find_nth(s: &MsiState, to: u8, kind: MsgKind, rank: usize) -> Option<Msg> {
    s.net
        .iter()
        .filter(|m| m.to == to && m.kind == kind)
        .nth(rank)
        .copied()
}

// --- Cache controller ------------------------------------------------------

fn cache_hole_specs(rule: CacheRule) -> (HoleSpec, HoleSpec) {
    let stem = rule.stem();
    (
        HoleSpec::new(format!("{stem}/resp"), CacheResponse::NAMES),
        HoleSpec::new(format!("{stem}/next"), CACHE_NEXT_NAMES),
    )
}

fn resolve_cache_actions(
    core: &Core,
    rule: CacheRule,
    ctx: &mut dyn HoleResolver,
) -> Option<(CacheResponse, CacheState)> {
    if core.cache_holes.contains(&rule) {
        let (resp_spec, next_spec) = &core.cache_specs[&rule];
        // Consult every hole of the rule before aborting on a wildcard, so
        // that all of a rule's holes are discovered together — "a sequence
        // of holes (of distinct action types) will make up a full transition
        // rule" (§III).
        let r = ctx.choose(resp_spec);
        let n = ctx.choose(next_spec);
        Some((
            CacheResponse::ALL[r.action()?],
            CacheState::ALL[n.action()?],
        ))
    } else {
        Some(rule.golden())
    }
}

/// Delivers message `m` to cache `c` and applies the matching rule.
fn cache_deliver(
    core: &Core,
    s: &MsiState,
    c: usize,
    m: Msg,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<MsiState> {
    use CacheState as Q;
    use MsgKind as K;

    let line = s.caches[c];

    // Transient-state rules go through the (possibly synthesized) action
    // tables; classify the event first, *before* mutating anything, so that
    // a wildcard hole can abort without side effects.
    let transient_rule = match (line.state, m.kind) {
        (Q::IsD, K::Data) => Some(CacheRule::IsDData),
        (Q::ImAd, K::Data) => Some(if line.got >= m.acks {
            CacheRule::ImAdDataComplete
        } else {
            CacheRule::ImAdDataPending
        }),
        (Q::ImAd, K::Ack) => Some(CacheRule::ImAdAck),
        (Q::SmAd, K::Data) => Some(if line.got >= m.acks {
            CacheRule::SmAdDataComplete
        } else {
            CacheRule::SmAdDataPending
        }),
        (Q::SmAd, K::Ack) => Some(CacheRule::SmAdAck),
        (Q::SmAd, K::Inv) => Some(CacheRule::SmAdInv),
        (Q::WmA, K::Ack) => Some(if line.got + 1 >= line.need {
            CacheRule::WmAAckLast
        } else {
            CacheRule::WmAAckNotLast
        }),
        _ => None,
    };

    if let Some(rule) = transient_rule {
        let Some((resp, next)) = resolve_cache_actions(core, rule, ctx) else {
            return RuleOutcome::Blocked;
        };
        let mut ns = consume(s, &m);
        // Event-hardwired counter bookkeeping (not part of the synthesized
        // action libraries): acks are counted, data records the expectation.
        match m.kind {
            K::Ack => ns.caches[c].got += 1,
            K::Data => {
                ns.caches[c].need = m.acks;
                if core.data {
                    ns.caches[c].val = m.val;
                }
            }
            _ => {}
        }
        cache_respond(core, &mut ns, c as u8, &m, resp);
        set_cache_state(core, &mut ns, c, next);
        return RuleOutcome::Next(ns);
    }

    // Stable-state rules are part of the given skeleton (hardwired).
    let mut ns = consume(s, &m);
    match (line.state, m.kind) {
        (Q::S, K::Inv) => {
            send(&mut ns, msg(K::Ack, m.req, c as u8, 0), core.cap);
            set_cache_state(core, &mut ns, c, Q::I);
        }
        (Q::M, K::FwdGetS) => {
            let val = ns.caches[c].val;
            send(&mut ns, msg_val(K::Data, m.req, c as u8, 0, val), core.cap);
            send(
                &mut ns,
                msg_val(K::Data, core.dir_id, c as u8, 0, val),
                core.cap,
            );
            set_cache_state(core, &mut ns, c, Q::S);
        }
        (Q::M, K::FwdGetM) => {
            let val = ns.caches[c].val;
            send(&mut ns, msg_val(K::Data, m.req, c as u8, 0, val), core.cap);
            set_cache_state(core, &mut ns, c, Q::I);
        }
        _ => poison(&mut ns, ProtocolError::UnexpectedMessage),
    }
    RuleOutcome::Next(ns)
}

/// Applies a cache response action; target selection follows the trigger
/// kind as documented on [`CacheResponse`].
fn cache_respond(core: &Core, ns: &mut MsiState, c: u8, trigger: &Msg, resp: CacheResponse) {
    use MsgKind as K;
    match resp {
        CacheResponse::None => {}
        CacheResponse::SendData => match trigger.kind {
            K::Inv | K::FwdGetS | K::FwdGetM => {
                let val = ns.caches[c as usize].val;
                send(ns, msg_val(K::Data, trigger.req, c, 0, val), core.cap);
                if trigger.kind == K::FwdGetS {
                    send(ns, msg_val(K::Data, core.dir_id, c, 0, val), core.cap);
                }
            }
            _ => {
                let val = ns.caches[c as usize].val;
                send(ns, msg_val(K::Data, core.dir_id, c, 0, val), core.cap);
            }
        },
        CacheResponse::SendAck => match trigger.kind {
            K::Inv => send(ns, msg(K::Ack, trigger.req, c, 0), core.cap),
            _ => send(ns, msg(K::Ack, core.dir_id, c, 0), core.cap),
        },
    }
}

fn set_cache_state(core: &Core, ns: &mut MsiState, c: usize, next: CacheState) {
    let entering_m = next == CacheState::M && ns.caches[c].state != CacheState::M;
    ns.caches[c].state = next;
    if next.is_stable() {
        ns.caches[c].reset_counters();
    }
    // With value tracking, completing a write (entering M) performs the
    // store that motivated it: a fresh value, recorded globally so the
    // data-integrity invariant can compare copies against it.
    if core.data && entering_m {
        let fresh = (ns.last_written + 1) % 4;
        ns.caches[c].val = fresh;
        ns.last_written = fresh;
    }
}

fn consume(s: &MsiState, m: &Msg) -> MsiState {
    let mut ns = s.clone();
    let removed = ns.net.remove(m);
    debug_assert!(
        removed.is_some(),
        "delivered message must be in the network"
    );
    ns
}

// --- Directory controller ----------------------------------------------------

fn dir_hole_specs(rule: DirRule) -> (HoleSpec, HoleSpec, HoleSpec) {
    let stem = rule.stem();
    (
        HoleSpec::new(format!("{stem}/resp"), DirResponse::NAMES),
        HoleSpec::new(format!("{stem}/next"), DIR_NEXT_NAMES),
        HoleSpec::new(format!("{stem}/track"), DirTrack::NAMES),
    )
}

fn resolve_dir_actions(
    core: &Core,
    rule: DirRule,
    ctx: &mut dyn HoleResolver,
) -> Option<(DirResponse, DirState, DirTrack)> {
    if core.dir_holes.contains(&rule) {
        let (resp_spec, next_spec, track_spec) = &core.dir_specs[&rule];
        // Consult every hole of the rule before aborting on a wildcard (see
        // `resolve_cache_actions`).
        let r = ctx.choose(resp_spec);
        let n = ctx.choose(next_spec);
        let t = ctx.choose(track_spec);
        Some((
            DirResponse::ALL[r.action()?],
            DirState::ALL[n.action()?],
            DirTrack::ALL[t.action()?],
        ))
    } else {
        Some(rule.golden())
    }
}

/// Delivers message `m` to the directory and applies the matching rule.
fn dir_deliver(
    core: &Core,
    s: &MsiState,
    m: Msg,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<MsiState> {
    use DirState as D;
    use MsgKind as K;

    let dir = s.dir;

    // Busy-state rules: the synthesizable transients.
    let transient_rule = match (dir.state, m.kind) {
        (D::IsB, K::Ack) => Some(DirRule::IsBAck),
        (D::ImB, K::Ack) => Some(DirRule::ImBAck),
        (D::SmB, K::Ack) => Some(DirRule::SmBAck),
        (D::MsB, K::Data) => Some(if dir.pending <= 1 {
            DirRule::MsBDataLast
        } else {
            DirRule::MsBDataNotLast
        }),
        (D::MsB, K::Ack) => Some(if dir.pending <= 1 {
            DirRule::MsBAckLast
        } else {
            DirRule::MsBAckNotLast
        }),
        _ => None,
    };

    if let Some(rule) = transient_rule {
        let Some((resp, next, track)) = resolve_dir_actions(core, rule, ctx) else {
            return RuleOutcome::Blocked;
        };
        let mut ns = consume(s, &m);
        if ns.dir.state == D::MsB {
            ns.dir.pending = ns.dir.pending.saturating_sub(1);
        }
        if core.data && m.kind == K::Data {
            // A data message to the directory is the owner's writeback.
            ns.mem = m.val;
        }
        dir_respond(core, &mut ns, &m, resp);
        dir_track(&mut ns, &m, track);
        set_dir_state(&mut ns, next);
        return RuleOutcome::Next(ns);
    }

    // Requests stall while the directory is busy: no rule consumes them, so
    // they wait in the network — the paper's serialization discipline.
    if matches!(m.kind, K::GetS | K::GetM) && !dir.state.is_stable() {
        return RuleOutcome::Disabled;
    }

    // Stable-state rules are part of the given skeleton (hardwired).
    let mut ns = consume(s, &m);
    match (dir.state, m.kind) {
        (D::I, K::GetS) | (D::S, K::GetS) => {
            let mem = ns.mem;
            send(&mut ns, msg_val(K::Data, m.req, m.req, 0, mem), core.cap);
            ns.dir.add_sharer(m.req);
            set_dir_state(&mut ns, D::IsB);
        }
        (D::I, K::GetM) => {
            let mem = ns.mem;
            send(&mut ns, msg_val(K::Data, m.req, m.req, 0, mem), core.cap);
            ns.dir.owner = Some(m.req);
            ns.dir.sharers = 0;
            set_dir_state(&mut ns, D::ImB);
        }
        (D::S, K::GetM) => {
            let acks = ns.dir.sharers_except(m.req) as u8;
            let mem = ns.mem;
            send(&mut ns, msg_val(K::Data, m.req, m.req, acks, mem), core.cap);
            let sharers: Vec<u8> = ns.dir.sharer_ids_except(m.req).collect();
            for sh in sharers {
                send(&mut ns, msg(K::Inv, sh, m.req, 0), core.cap);
            }
            ns.dir.owner = Some(m.req);
            ns.dir.sharers = 0;
            set_dir_state(&mut ns, D::SmB);
        }
        (D::M, K::GetS) => match ns.dir.owner {
            Some(owner) => {
                send(&mut ns, msg(K::FwdGetS, owner, m.req, 0), core.cap);
                ns.dir.add_sharer(m.req);
                ns.dir.owner = None;
                set_dir_state(&mut ns, D::MsB);
            }
            None => poison(&mut ns, ProtocolError::NoOwner),
        },
        (D::M, K::GetM) => match ns.dir.owner {
            Some(owner) => {
                send(&mut ns, msg(K::FwdGetM, owner, m.req, 0), core.cap);
                ns.dir.owner = Some(m.req);
                set_dir_state(&mut ns, D::ImB);
            }
            None => poison(&mut ns, ProtocolError::NoOwner),
        },
        _ => poison(&mut ns, ProtocolError::UnexpectedMessage),
    }
    RuleOutcome::Next(ns)
}

/// Applies a directory response action; `trigger.req` is the requester (or
/// sender) the response concerns.
fn dir_respond(core: &Core, ns: &mut MsiState, trigger: &Msg, resp: DirResponse) {
    use MsgKind as K;
    match resp {
        DirResponse::None => {}
        DirResponse::SendData => {
            let mem = ns.mem;
            send(
                ns,
                msg_val(K::Data, trigger.req, trigger.req, 0, mem),
                core.cap,
            );
        }
        DirResponse::SendDataInvs => {
            let acks = ns.dir.sharers_except(trigger.req) as u8;
            let mem = ns.mem;
            send(
                ns,
                msg_val(K::Data, trigger.req, trigger.req, acks, mem),
                core.cap,
            );
            let sharers: Vec<u8> = ns.dir.sharer_ids_except(trigger.req).collect();
            for sh in sharers {
                send(ns, msg(K::Inv, sh, trigger.req, 0), core.cap);
            }
        }
        DirResponse::FwdGetS | DirResponse::FwdGetM => match ns.dir.owner {
            Some(owner) => {
                let kind = if resp == DirResponse::FwdGetS {
                    K::FwdGetS
                } else {
                    K::FwdGetM
                };
                send(ns, msg(kind, owner, trigger.req, 0), core.cap);
            }
            None => poison(ns, ProtocolError::NoOwner),
        },
    }
}

fn dir_track(ns: &mut MsiState, trigger: &Msg, track: DirTrack) {
    match track {
        DirTrack::None => {}
        DirTrack::SetOwner => {
            ns.dir.owner = Some(trigger.req);
            ns.dir.sharers = 0;
        }
        DirTrack::AddSharer => ns.dir.add_sharer(trigger.req),
    }
}

fn set_dir_state(ns: &mut MsiState, next: DirState) {
    if next == DirState::MsB && ns.dir.state != DirState::MsB {
        // A fresh MS_B transaction waits for two messages: the owner's
        // writeback and the requester's completion ack.
        ns.dir.pending = 2;
    }
    if next.is_stable() {
        ns.dir.pending = 0;
    }
    ns.dir.state = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_mck::{Checker, CheckerOptions, Verdict};

    fn check(config: MsiConfig) -> verc3_mck::Outcome<MsiState> {
        Checker::new(CheckerOptions::default()).run(&MsiModel::new(config))
    }

    #[test]
    fn golden_protocol_verifies() {
        let out = check(MsiConfig::default());
        assert_eq!(
            out.verdict(),
            Verdict::Success,
            "golden MSI must verify: {:?}",
            out.failure().map(|f| f.to_string())
        );
        assert!(
            out.stats().states_visited > 100,
            "state space is non-trivial"
        );
    }

    #[test]
    fn golden_two_caches_verifies() {
        let out = check(MsiConfig {
            n_caches: 2,
            ..MsiConfig::default()
        });
        assert_eq!(out.verdict(), Verdict::Success);
    }

    #[test]
    fn golden_with_data_values_verifies() {
        let out = check(MsiConfig {
            data_values: true,
            ..MsiConfig::default()
        });
        assert_eq!(
            out.verdict(),
            Verdict::Success,
            "data integrity must hold in the golden protocol: {:?}",
            out.failure().map(|f| f.to_string())
        );
        let plain = check(MsiConfig::default());
        assert!(
            out.stats().states_visited > 3 * plain.stats().states_visited,
            "value tracking must enlarge the state space: {} vs {}",
            out.stats().states_visited,
            plain.stats().states_visited
        );
    }

    #[test]
    fn data_integrity_catches_stale_directory_data() {
        // Synthesize dir/SM_B+Ack with value tracking on: the response
        // action `send_data` would hand later requesters the *stale* memory
        // value (the new owner's store never reached memory). Verify the
        // checker rejects that candidate for a data-related reason.
        use verc3_mck::FixedResolver;
        let mut cfg = MsiConfig::msi_small();
        cfg.data_values = true;
        let model = MsiModel::new(cfg);
        let mut r = FixedResolver::from_pairs([
            ("cache/SM_AD+Inv/resp", 2usize), // golden
            ("cache/SM_AD+Inv/next", 4),      // golden
            ("dir/IS_B+Ack/resp", 0),
            ("dir/IS_B+Ack/next", 1),
            ("dir/IS_B+Ack/track", 0),
            ("dir/SM_B+Ack/resp", 1), // send_data: stale memory to the requester
            ("dir/SM_B+Ack/next", 2),
            ("dir/SM_B+Ack/track", 0),
        ]);
        let out = Checker::new(CheckerOptions::default()).run_with(&model, &mut r);
        assert_eq!(out.verdict(), Verdict::Failure);
    }

    #[test]
    fn symmetry_reduces_state_count() {
        let sym = check(MsiConfig::default());
        let raw = check(MsiConfig {
            symmetry: false,
            ..MsiConfig::default()
        });
        assert_eq!(raw.verdict(), Verdict::Success);
        assert!(
            sym.stats().states_visited < raw.stats().states_visited,
            "symmetry must shrink the space: {} vs {}",
            sym.stats().states_visited,
            raw.stats().states_visited
        );
    }

    #[test]
    fn hole_count_and_space() {
        let mut cfg = MsiConfig::default();
        cfg.dir_holes.insert(DirRule::IsBAck);
        cfg.cache_holes.insert(CacheRule::SmAdInv);
        assert_eq!(cfg.hole_count(), 5);
        assert_eq!(cfg.candidate_space(), 21 * 105);
    }

    #[test]
    #[should_panic(expected = "n_caches")]
    fn single_cache_rejected() {
        let _ = MsiModel::new(MsiConfig {
            n_caches: 1,
            ..MsiConfig::default()
        });
    }
}
