//! The directory-based MSI cache-coherence protocol — the paper's case
//! study (§III).
//!
//! The module is organized as:
//!
//! * [`types`] — states, messages, the global [`MsiState`], and its
//!   symmetry (scalarset) canonicalization;
//! * [`actions`] — the synthesizable action libraries (sized exactly as in
//!   the paper: cache response 3, cache next-state 7, directory response 5,
//!   directory next-state 7, directory track 3) and the golden rule table;
//! * [`model`] — the transition system with request, cache-delivery, and
//!   directory-delivery rules, hole integration, and the property suite
//!   (SWMR, no-protocol-error, stable-state reachability, eventual
//!   quiescence);
//! * [`skeleton`] — the named problem instances: `golden`, `msi_tiny`,
//!   `msi_small` (paper, 8 holes), `msi_large` (paper, 12 holes), `msi_xl`.
//!
//! # Example
//!
//! Synthesize the MSI-tiny instance:
//!
//! ```
//! use verc3_protocols::msi::{MsiConfig, MsiModel};
//! use verc3_core::{SynthOptions, Synthesizer};
//!
//! let model = MsiModel::new(MsiConfig::msi_tiny());
//! let report = Synthesizer::new(SynthOptions::default()).run(&model);
//! assert!(!report.solutions().is_empty());
//! ```

pub mod actions;
pub mod model;
pub mod skeleton;
pub mod types;

pub use actions::{CacheResponse, CacheRule, DirResponse, DirRule, DirTrack};
pub use model::{MsiConfig, MsiModel};
pub use types::{
    CacheLine, CacheState, DirState, Directory, Msg, MsgKind, MsiState, ProtocolError,
};
