//! State and message types of the directory-based MSI protocol.
//!
//! The protocol follows the paper's Figure 3: per-line MSI states in each
//! cache controller, a central directory tracking sharers/owner, and an
//! **unordered** interconnect (modelled as a [`Multiset`]) carrying five
//! logical message classes — requests (`GetS`/`GetM`), forwarded requests,
//! invalidations, data, and acknowledgements. Because the network is
//! unordered, the controllers need *transient* states to resolve races; those
//! transient states' actions are what the case study synthesizes (§III).
//!
//! Design choices (documented in DESIGN.md):
//!
//! * The directory is a *stalling* directory: while a transaction is in
//!   flight it sits in a busy state and leaves further requests in the
//!   network — the paper's "Invalid-to-Modified" serialization example.
//! * The acknowledgement message type is dual-purpose, as the paper's
//!   five-type vocabulary implies: sharers acknowledge invalidations to the
//!   *requester*, and requesters acknowledge transaction completion to the
//!   *directory* (the unblock that releases a busy state).
//! * Evictions are omitted, exactly as in the paper's Figure 3.

use verc3_mck::scalarset::{apply_perm_to_index, rank_keys, Symmetric};
use verc3_mck::Multiset;

/// Stable and transient states of a cache controller (7 total — the radix of
/// the cache "next state" action library in §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheState {
    /// Invalid: no permissions.
    I,
    /// Shared: read permission.
    S,
    /// Modified: read+write permission (the single writer).
    M,
    /// I→S in flight: GetS issued, awaiting data.
    IsD,
    /// I→M in flight: GetM issued, awaiting data and invalidation acks.
    ImAd,
    /// S→M upgrade in flight: GetM issued, awaiting data and acks.
    SmAd,
    /// Data received, waiting for the remaining invalidation acks before
    /// entering M (merged IM_A/SM_A, see DESIGN.md).
    WmA,
}

impl CacheState {
    /// `true` for the stable states I, S, M.
    pub fn is_stable(self) -> bool {
        matches!(self, CacheState::I | CacheState::S | CacheState::M)
    }

    /// All seven states in action-library order.
    pub const ALL: [CacheState; 7] = [
        CacheState::I,
        CacheState::S,
        CacheState::M,
        CacheState::IsD,
        CacheState::ImAd,
        CacheState::SmAd,
        CacheState::WmA,
    ];
}

/// Stable and busy states of the directory controller (7 total — the radix
/// of the directory "next state" action library in §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DirState {
    /// No copies cached.
    I,
    /// Read-only copies at the tracked sharers.
    S,
    /// Exclusive copy at the tracked owner.
    M,
    /// Busy completing a read miss; unblocks to S.
    IsB,
    /// Busy completing a write; unblocks to M (entered from I or on
    /// ownership transfer).
    ImB,
    /// Busy completing a write from S; unblocks to M. Behaviourally
    /// interchangeable with [`DirState::ImB`] — deliberately so: the paper
    /// observes that distinct solutions may "behave equivalently" (§III),
    /// and this pair is one source of such equivalence.
    SmB,
    /// Busy downgrading the owner on a read miss; waits for the owner's
    /// writeback *and* the requester's completion ack (in either order).
    MsB,
}

impl DirState {
    /// `true` for the stable states I, S, M.
    pub fn is_stable(self) -> bool {
        matches!(self, DirState::I | DirState::S | DirState::M)
    }

    /// All seven states in action-library order.
    pub const ALL: [DirState; 7] = [
        DirState::I,
        DirState::S,
        DirState::M,
        DirState::IsB,
        DirState::ImB,
        DirState::SmB,
        DirState::MsB,
    ];
}

/// The message vocabulary of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// Read request, cache → directory.
    GetS,
    /// Write request, cache → directory.
    GetM,
    /// Read request forwarded to the owner, directory → cache.
    FwdGetS,
    /// Write request forwarded to the owner, directory → cache.
    FwdGetM,
    /// Invalidation, directory → sharer; acknowledged to the requester.
    Inv,
    /// Data, directory/owner → requester, or owner → directory (writeback).
    Data,
    /// Acknowledgement: sharer → requester (invalidation ack) or
    /// requester/owner → directory (completion/unblock).
    Ack,
}

/// One in-flight message.
///
/// `to` is the destination agent (cache index, or [`MsiState::dir_id`] for the
/// directory). `req` identifies the cache the message concerns: the
/// requester for requests/forwards/invalidations/directory-sent data, the
/// *sender* for cache-sent data and acknowledgements. `acks` is only
/// meaningful on data sent to a write requester: the number of invalidation
/// acks to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msg {
    /// Message class.
    pub kind: MsgKind,
    /// Destination agent id (cache index or directory id).
    pub to: u8,
    /// Cache this message concerns (requester or sender; see type docs).
    pub req: u8,
    /// Invalidation acks the recipient must collect (data messages only).
    pub acks: u8,
    /// Carried data value (data messages, with value tracking enabled).
    pub val: u8,
}

/// Protocol-level error conditions, modelled as poison states so that the
/// checker reports them as invariant violations with a full trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolError {
    /// An agent received a message its current state has no rule for.
    UnexpectedMessage,
    /// A response action needed to forward to the owner, but none is tracked.
    NoOwner,
    /// The bounded network capacity was exceeded (runaway candidate).
    NetworkOverflow,
}

/// Per-cache-line controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheLine {
    /// Controller state.
    pub state: CacheState,
    /// Invalidation acks received so far for the in-flight write.
    pub got: u8,
    /// Invalidation acks required (recorded from the data response).
    pub need: u8,
    /// Cached copy of the data value (only meaningful when the model is
    /// configured with data-value tracking).
    pub val: u8,
}

impl CacheLine {
    /// A line in the Invalid state with clear counters.
    pub fn invalid() -> Self {
        CacheLine {
            state: CacheState::I,
            got: 0,
            need: 0,
            val: 0,
        }
    }

    /// Resets the ack counters (on entering any stable state).
    pub fn reset_counters(&mut self) {
        self.got = 0;
        self.need = 0;
    }
}

/// Directory controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Directory {
    /// Controller state.
    pub state: DirState,
    /// Tracked exclusive owner.
    pub owner: Option<u8>,
    /// Tracked sharers, as a bitset over cache indices.
    pub sharers: u8,
    /// Messages still outstanding before a [`DirState::MsB`] transaction
    /// completes (the owner writeback and the requester ack).
    pub pending: u8,
}

impl Directory {
    /// The initial directory: Invalid, nothing tracked.
    pub fn invalid() -> Self {
        Directory {
            state: DirState::I,
            owner: None,
            sharers: 0,
            pending: 0,
        }
    }

    /// `true` if cache `c` is a tracked sharer.
    pub fn is_sharer(&self, c: u8) -> bool {
        self.sharers & (1 << c) != 0
    }

    /// Adds cache `c` to the sharer set.
    pub fn add_sharer(&mut self, c: u8) {
        self.sharers |= 1 << c;
    }

    /// Number of tracked sharers excluding cache `c`.
    pub fn sharers_except(&self, c: u8) -> u32 {
        (self.sharers & !(1 << c)).count_ones()
    }

    /// Iterates over tracked sharers other than `except`.
    pub fn sharer_ids_except(&self, except: u8) -> impl Iterator<Item = u8> + '_ {
        let mask = self.sharers & !(1 << except);
        (0..8).filter(move |&c| mask & (1 << c) != 0)
    }
}

/// A global protocol state: all cache lines, the directory, and the network.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsiState {
    /// Per-cache controller states, indexed by cache id.
    pub caches: Vec<CacheLine>,
    /// The directory controller.
    pub dir: Directory,
    /// The unordered interconnect.
    pub net: Multiset<Msg>,
    /// Memory value held at the directory (data-value tracking only).
    pub mem: u8,
    /// The value of the most recent completed store (data-value tracking
    /// only); the data-integrity invariant compares copies against it.
    pub last_written: u8,
    /// Poison marker: a protocol error occurred reaching this state.
    pub error: Option<ProtocolError>,
}

impl MsiState {
    /// The initial state for `n` caches: everything invalid, network empty.
    pub fn initial(n: usize) -> Self {
        MsiState {
            caches: vec![CacheLine::invalid(); n],
            dir: Directory::invalid(),
            net: Multiset::new(),
            mem: 0,
            last_written: 0,
            error: None,
        }
    }

    /// The directory's agent id (caches are `0..n`).
    pub fn dir_id(&self) -> u8 {
        self.caches.len() as u8
    }

    /// `true` when every controller is stable and the network is drained —
    /// the quiescence predicate of the liveness property.
    pub fn is_quiescent(&self) -> bool {
        self.error.is_none()
            && self.net.is_empty()
            && self.dir.state.is_stable()
            && self.caches.iter().all(|c| c.state.is_stable())
    }

    /// Number of caches in state `q`.
    pub fn count_cache_state(&self, q: CacheState) -> usize {
        self.caches.iter().filter(|c| c.state == q).count()
    }

    /// The Single-Writer–Multiple-Reader invariant: at most one writer (M),
    /// and no readers (S) while a writer exists.
    pub fn swmr_holds(&self) -> bool {
        let writers = self.count_cache_state(CacheState::M);
        let readers = self.count_cache_state(CacheState::S);
        writers <= 1 && (writers == 0 || readers == 0)
    }

    /// The data-integrity invariant (only checked with value tracking):
    /// every valid copy — readers in S and the writer in M — holds the most
    /// recently written value.
    pub fn data_integrity_holds(&self) -> bool {
        self.caches.iter().all(|c| {
            !matches!(c.state, CacheState::S | CacheState::M) || c.val == self.last_written
        })
    }
}

impl Symmetric for MsiState {
    fn apply_perm(&self, perm: &[u8]) -> Self {
        let n = self.caches.len();
        debug_assert_eq!(perm.len(), n);

        let mut caches = vec![CacheLine::invalid(); n];
        for (old, line) in self.caches.iter().enumerate() {
            caches[perm[old] as usize] = *line;
        }

        let mut sharers = 0u8;
        for c in 0..n as u8 {
            if self.dir.is_sharer(c) {
                sharers |= 1 << apply_perm_to_index(perm, c);
            }
        }
        let dir = Directory {
            state: self.dir.state,
            owner: self.dir.owner.map(|o| apply_perm_to_index(perm, o)),
            sharers,
            pending: self.dir.pending,
        };

        let dir_id = self.dir_id();
        let net: Multiset<Msg> = self
            .net
            .iter()
            .map(|m| Msg {
                kind: m.kind,
                to: if m.to < dir_id {
                    apply_perm_to_index(perm, m.to)
                } else {
                    m.to
                },
                req: apply_perm_to_index(perm, m.req),
                acks: m.acks,
                val: m.val,
            })
            .collect();

        MsiState {
            caches,
            dir,
            net,
            mem: self.mem,
            last_written: self.last_written,
            error: self.error,
        }
    }

    fn apply_perm_into(&self, perm: &[u8], out: &mut Self) {
        let n = self.caches.len();
        debug_assert_eq!(perm.len(), n);

        out.caches.resize(n, CacheLine::invalid());
        for (old, line) in self.caches.iter().enumerate() {
            out.caches[perm[old] as usize] = *line;
        }

        let mut sharers = 0u8;
        for c in 0..n as u8 {
            if self.dir.is_sharer(c) {
                sharers |= 1 << apply_perm_to_index(perm, c);
            }
        }
        out.dir = Directory {
            state: self.dir.state,
            owner: self.dir.owner.map(|o| apply_perm_to_index(perm, o)),
            sharers,
            pending: self.dir.pending,
        };

        let dir_id = self.dir_id();
        out.net.clear();
        out.net.extend(self.net.iter().map(|m| Msg {
            kind: m.kind,
            to: if m.to < dir_id {
                apply_perm_to_index(perm, m.to)
            } else {
                m.to
            },
            req: apply_perm_to_index(perm, m.req),
            acks: m.acks,
            val: m.val,
        }));

        out.mem = self.mem;
        out.last_written = self.last_written;
        out.error = self.error;
    }

    /// Ranks of the per-cache controller lines — lawful for orbit pruning
    /// because `MsiState`'s derived `Ord` compares the `caches` array first
    /// (equivariance: the keys travel with the lines under any permutation;
    /// dominance: a smaller key sequence is a smaller `caches` prefix).
    fn signature(&self, n: usize, keys: &mut Vec<u64>) {
        debug_assert_eq!(self.caches.len(), n);
        rank_keys(&self.caches, keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_mck::all_permutations;

    #[test]
    fn initial_state_is_quiescent_and_safe() {
        let s = MsiState::initial(3);
        assert!(s.is_quiescent());
        assert!(s.swmr_holds());
        assert_eq!(s.dir_id(), 3);
    }

    #[test]
    fn swmr_detects_violations() {
        let mut s = MsiState::initial(3);
        s.caches[0].state = CacheState::M;
        assert!(s.swmr_holds());
        s.caches[1].state = CacheState::S;
        assert!(!s.swmr_holds(), "writer plus reader");
        s.caches[1].state = CacheState::M;
        assert!(!s.swmr_holds(), "two writers");
        s.caches[0].state = CacheState::S;
        s.caches[1].state = CacheState::S;
        assert!(s.swmr_holds(), "multiple readers are fine");
    }

    #[test]
    fn sharer_bitset_operations() {
        let mut d = Directory::invalid();
        d.add_sharer(0);
        d.add_sharer(2);
        assert!(d.is_sharer(0));
        assert!(!d.is_sharer(1));
        assert_eq!(d.sharers_except(0), 1);
        assert_eq!(d.sharer_ids_except(0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(d.sharer_ids_except(7).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn permutation_moves_all_index_fields() {
        let mut s = MsiState::initial(3);
        s.caches[0].state = CacheState::M;
        s.dir.state = DirState::M;
        s.dir.owner = Some(0);
        s.dir.add_sharer(1);
        s.net.insert(Msg {
            kind: MsgKind::Data,
            to: 0,
            req: 0,
            acks: 1,
            val: 0,
        });
        s.net.insert(Msg {
            kind: MsgKind::Ack,
            to: 3,
            req: 2,
            acks: 0,
            val: 0,
        });

        // Swap caches 0 and 2.
        let p = vec![2, 1, 0];
        let t = s.apply_perm(&p);
        assert_eq!(t.caches[2].state, CacheState::M);
        assert_eq!(t.dir.owner, Some(2));
        assert!(t.dir.is_sharer(1));
        assert!(t.net.contains(&Msg {
            kind: MsgKind::Data,
            to: 2,
            req: 2,
            acks: 1,
            val: 0
        }));
        // Directory destination is not a cache index: unchanged.
        assert!(t.net.contains(&Msg {
            kind: MsgKind::Ack,
            to: 3,
            req: 0,
            acks: 0,
            val: 0
        }));
    }

    #[test]
    fn canonicalization_merges_symmetric_states() {
        let perms = all_permutations(3);
        let mut a = MsiState::initial(3);
        a.caches[0].state = CacheState::S;
        a.dir.add_sharer(0);
        let mut b = MsiState::initial(3);
        b.caches[2].state = CacheState::S;
        b.dir.add_sharer(2);
        assert_eq!(a.canonicalize(&perms), b.canonicalize(&perms));

        let mut c = MsiState::initial(3);
        c.caches[1].state = CacheState::M;
        assert_ne!(a.canonicalize(&perms), c.canonicalize(&perms));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let perms = all_permutations(3);
        let mut s = MsiState::initial(3);
        s.caches[1].state = CacheState::SmAd;
        s.caches[2].state = CacheState::M;
        s.dir.owner = Some(2);
        s.net.insert(Msg {
            kind: MsgKind::GetM,
            to: 3,
            req: 1,
            acks: 0,
            val: 0,
        });
        let c1 = s.canonicalize(&perms);
        let c2 = c1.canonicalize(&perms);
        assert_eq!(c1, c2);
    }
}
