//! Named skeleton configurations for the MSI case study.
//!
//! The paper evaluates two problem sizes (§III):
//!
//! * **MSI-small** — 8 holes: 2 directory + 1 cache transition rules;
//!   naïve candidate space (5·7·3)²·(3·7) = 231 525.
//! * **MSI-large** — 12 holes: 2 directory + 3 cache transition rules;
//!   naïve candidate space (5·7·3)²·(3·7)³ = 102 102 525.
//!
//! We add three configurations of our own: **MSI-tiny** (one directory
//! rule, 3 holes), a seconds-scale instance for tests and micro-benchmarks;
//! **MSI-xl** (MSI-large plus the `WM_A` last-ack rule, 14 holes) as a
//! harder-than-paper stress configuration; and **MSI-5** (the MSI-small
//! holes over five caches), the scalarset-scaling workload the
//! orbit-pruning canonicalizer unlocked.

use super::actions::{CacheRule, DirRule};
use super::model::MsiConfig;

impl MsiConfig {
    /// The complete protocol: no holes — pure verification.
    pub fn golden() -> Self {
        MsiConfig::default()
    }

    /// MSI-tiny (3 holes = 1 directory rule): `dir/IS_B+Ack`.
    ///
    /// Not part of the paper; a fast instance for tests and benches.
    pub fn msi_tiny() -> Self {
        let mut cfg = MsiConfig::default();
        cfg.dir_holes.insert(DirRule::IsBAck);
        cfg
    }

    /// MSI-small (8 holes = 2 directory + 1 cache transition rules):
    /// `dir/IS_B+Ack`, `dir/SM_B+Ack`, and the upgrade-race rule
    /// `cache/SM_AD+Inv`.
    pub fn msi_small() -> Self {
        let mut cfg = MsiConfig::default();
        cfg.dir_holes.insert(DirRule::IsBAck);
        cfg.dir_holes.insert(DirRule::SmBAck);
        cfg.cache_holes.insert(CacheRule::SmAdInv);
        cfg
    }

    /// MSI-large (12 holes = 2 directory + 3 cache transition rules):
    /// MSI-small plus `cache/IS_D+Data` and `cache/IM_AD+Data[all-acks]`.
    pub fn msi_large() -> Self {
        let mut cfg = Self::msi_small();
        cfg.cache_holes.insert(CacheRule::IsDData);
        cfg.cache_holes.insert(CacheRule::ImAdDataComplete);
        cfg
    }

    /// MSI-xl (14 holes): MSI-large plus `cache/WM_A+Ack[last]`.
    ///
    /// Not part of the paper; a stress configuration one step toward the
    /// "all 35 holes" problem the paper reports as intractable.
    pub fn msi_xl() -> Self {
        let mut cfg = Self::msi_large();
        cfg.cache_holes.insert(CacheRule::WmAAckLast);
        cfg
    }

    /// MSI-5 (8 holes): the MSI-small hole set over a **five-cache**
    /// scalarset.
    ///
    /// Not part of the paper, which stops at 3 caches. The state space per
    /// candidate grows ~9× over n = 3 and — decisive for the old
    /// all-permutations canonicalizer — every state pays 5! = 120 instead
    /// of 3! = 6 permutation rebuilds, which priced this configuration out
    /// of CI until the orbit-pruning canonicalizer landed (see
    /// EXPERIMENTS.md for the measured before/after).
    pub fn msi5() -> Self {
        let mut cfg = Self::msi_small();
        cfg.n_caches = 5;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_counts_match_paper() {
        assert_eq!(MsiConfig::golden().hole_count(), 0);
        assert_eq!(MsiConfig::msi_tiny().hole_count(), 3);
        assert_eq!(
            MsiConfig::msi_small().hole_count(),
            8,
            "paper: MSI-small has 8 holes"
        );
        assert_eq!(
            MsiConfig::msi_large().hole_count(),
            12,
            "paper: MSI-large has 12 holes"
        );
        assert_eq!(MsiConfig::msi_xl().hole_count(), 14);
    }

    #[test]
    fn candidate_spaces_match_table_1() {
        assert_eq!(MsiConfig::msi_small().candidate_space(), 231_525);
        assert_eq!(MsiConfig::msi_large().candidate_space(), 102_102_525);
    }

    #[test]
    fn msi_xl_candidate_space_extends_large() {
        // MSI-large's 102 102 525 times the WM_A rule's (3·7) library.
        assert_eq!(MsiConfig::msi_xl().candidate_space(), 2_144_153_025);
    }
}
