//! Action libraries and the golden (reference) transition-rule table.
//!
//! The paper's case study splits each transition rule into independently
//! synthesizable *action types* (§III):
//!
//! * cache controller — **response** (3 actions) and **next state** (7);
//! * directory controller — **response** (5), **next state** (7) and
//!   **track** (3).
//!
//! A hole corresponds to one action type of one transient-state rule, so a
//! cache rule contributes 2 holes and a directory rule 3 — which is exactly
//! how the paper arrives at MSI-small = 2·3 + 1·2 = 8 holes and
//! MSI-large = 2·3 + 3·2 = 12, with candidate spaces
//! (5·7·3)²·(3·7) = 231 525 and (5·7·3)²·(3·7)³ = 102 102 525 matching
//! Table I.
//!
//! Every action is a pure function of the controller state and the trigger
//! message, as the paper requires of hole actions.

use super::types::{CacheState, DirState};

/// Cache-controller response actions (library size 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheResponse {
    /// Send nothing.
    None,
    /// Send data: to the trigger's requester (forwards/invalidations), plus
    /// a writeback copy to the directory when answering a forwarded GetS;
    /// to the directory when the trigger carries no requester.
    SendData,
    /// Acknowledge: to the trigger's requester for invalidations, to the
    /// directory (transaction completion) for data/ack triggers.
    SendAck,
}

impl CacheResponse {
    /// Library order (action indices used in candidate vectors).
    pub const ALL: [CacheResponse; 3] = [
        CacheResponse::None,
        CacheResponse::SendData,
        CacheResponse::SendAck,
    ];

    /// Action names, index-aligned with [`CacheResponse::ALL`].
    pub const NAMES: [&'static str; 3] = ["none", "send_data", "send_ack"];
}

/// Cache-controller next-state actions (library size 7): one per state.
pub type CacheNext = CacheState;

/// Names of the cache next-state actions, index-aligned with
/// [`CacheState::ALL`].
pub const CACHE_NEXT_NAMES: [&str; 7] = ["I", "S", "M", "IS_D", "IM_AD", "SM_AD", "WM_A"];

/// Directory response actions (library size 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirResponse {
    /// Send nothing.
    None,
    /// Send data (no acks to collect) to the trigger's requester.
    SendData,
    /// Send data to the requester with the outstanding-invalidations count,
    /// and invalidations to every tracked sharer except the requester.
    SendDataInvs,
    /// Forward the request to the tracked owner as a `FwdGetS`.
    FwdGetS,
    /// Forward the request to the tracked owner as a `FwdGetM`.
    FwdGetM,
}

impl DirResponse {
    /// Library order (action indices used in candidate vectors).
    pub const ALL: [DirResponse; 5] = [
        DirResponse::None,
        DirResponse::SendData,
        DirResponse::SendDataInvs,
        DirResponse::FwdGetS,
        DirResponse::FwdGetM,
    ];

    /// Action names, index-aligned with [`DirResponse::ALL`].
    pub const NAMES: [&'static str; 5] = [
        "none",
        "send_data",
        "send_data_invs",
        "fwd_gets",
        "fwd_getm",
    ];
}

/// Directory next-state actions (library size 7): one per state.
pub type DirNext = DirState;

/// Names of the directory next-state actions, index-aligned with
/// [`DirState::ALL`].
pub const DIR_NEXT_NAMES: [&str; 7] = ["I", "S", "M", "IS_B", "IM_B", "SM_B", "MS_B"];

/// Directory track actions (library size 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirTrack {
    /// Leave the sharer/owner bookkeeping unchanged.
    None,
    /// Record the trigger's cache as exclusive owner (clearing sharers).
    SetOwner,
    /// Add the trigger's cache to the sharer set.
    AddSharer,
}

impl DirTrack {
    /// Library order (action indices used in candidate vectors).
    pub const ALL: [DirTrack; 3] = [DirTrack::None, DirTrack::SetOwner, DirTrack::AddSharer];

    /// Action names, index-aligned with [`DirTrack::ALL`].
    pub const NAMES: [&'static str; 3] = ["none", "set_owner", "add_sharer"];
}

/// Identifies a synthesizable cache-controller rule: a transient
/// (state, event) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheRule {
    /// `IS_D` receives data.
    IsDData,
    /// `IM_AD` receives data and all invalidation acks are in.
    ImAdDataComplete,
    /// `IM_AD` receives data but acks are still outstanding.
    ImAdDataPending,
    /// `IM_AD` receives an (early) invalidation ack.
    ImAdAck,
    /// `SM_AD` receives data and all invalidation acks are in.
    SmAdDataComplete,
    /// `SM_AD` receives data but acks are still outstanding.
    SmAdDataPending,
    /// `SM_AD` receives an (early) invalidation ack.
    SmAdAck,
    /// `SM_AD` receives an invalidation — the classic upgrade race: another
    /// writer was serialized first and this cache must surrender its shared
    /// copy while its own write remains in flight.
    SmAdInv,
    /// `WM_A` receives the final invalidation ack.
    WmAAckLast,
    /// `WM_A` receives a non-final invalidation ack.
    WmAAckNotLast,
}

impl CacheRule {
    /// The rule's hole-name stem, e.g. `cache/SM_AD+Inv`.
    pub fn stem(self) -> &'static str {
        match self {
            CacheRule::IsDData => "cache/IS_D+Data",
            CacheRule::ImAdDataComplete => "cache/IM_AD+Data[all-acks]",
            CacheRule::ImAdDataPending => "cache/IM_AD+Data[acks-pending]",
            CacheRule::ImAdAck => "cache/IM_AD+Ack",
            CacheRule::SmAdDataComplete => "cache/SM_AD+Data[all-acks]",
            CacheRule::SmAdDataPending => "cache/SM_AD+Data[acks-pending]",
            CacheRule::SmAdAck => "cache/SM_AD+Ack",
            CacheRule::SmAdInv => "cache/SM_AD+Inv",
            CacheRule::WmAAckLast => "cache/WM_A+Ack[last]",
            CacheRule::WmAAckNotLast => "cache/WM_A+Ack[not-last]",
        }
    }

    /// The golden (reference) actions completing this rule correctly.
    pub fn golden(self) -> (CacheResponse, CacheNext) {
        use CacheResponse as R;
        use CacheState as N;
        match self {
            CacheRule::IsDData => (R::SendAck, N::S),
            CacheRule::ImAdDataComplete => (R::SendAck, N::M),
            CacheRule::ImAdDataPending => (R::None, N::WmA),
            CacheRule::ImAdAck => (R::None, N::ImAd),
            CacheRule::SmAdDataComplete => (R::SendAck, N::M),
            CacheRule::SmAdDataPending => (R::None, N::WmA),
            CacheRule::SmAdAck => (R::None, N::SmAd),
            CacheRule::SmAdInv => (R::SendAck, N::ImAd),
            CacheRule::WmAAckLast => (R::SendAck, N::M),
            CacheRule::WmAAckNotLast => (R::None, N::WmA),
        }
    }
}

/// Identifies a synthesizable directory rule: a busy-state (state, event)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DirRule {
    /// `IS_B` receives the requester's completion ack.
    IsBAck,
    /// `IM_B` receives the requester's completion ack.
    ImBAck,
    /// `SM_B` receives the requester's completion ack.
    SmBAck,
    /// `MS_B` receives the last outstanding message — the owner's writeback.
    MsBDataLast,
    /// `MS_B` receives the owner's writeback with the requester ack still
    /// outstanding.
    MsBDataNotLast,
    /// `MS_B` receives the last outstanding message — the requester's ack.
    MsBAckLast,
    /// `MS_B` receives the requester's ack with the writeback outstanding.
    MsBAckNotLast,
}

impl DirRule {
    /// The rule's hole-name stem, e.g. `dir/IS_B+Ack`.
    pub fn stem(self) -> &'static str {
        match self {
            DirRule::IsBAck => "dir/IS_B+Ack",
            DirRule::ImBAck => "dir/IM_B+Ack",
            DirRule::SmBAck => "dir/SM_B+Ack",
            DirRule::MsBDataLast => "dir/MS_B+Data[last]",
            DirRule::MsBDataNotLast => "dir/MS_B+Data[not-last]",
            DirRule::MsBAckLast => "dir/MS_B+Ack[last]",
            DirRule::MsBAckNotLast => "dir/MS_B+Ack[not-last]",
        }
    }

    /// The golden (reference) actions completing this rule correctly.
    pub fn golden(self) -> (DirResponse, DirNext, DirTrack) {
        use DirResponse as R;
        use DirState as N;
        use DirTrack as T;
        match self {
            DirRule::IsBAck => (R::None, N::S, T::None),
            DirRule::ImBAck => (R::None, N::M, T::None),
            DirRule::SmBAck => (R::None, N::M, T::None),
            // The owner's writeback adds the (old) owner — the trigger's
            // sender — to the sharer set.
            DirRule::MsBDataLast => (R::None, N::S, T::AddSharer),
            DirRule::MsBDataNotLast => (R::None, N::MsB, T::AddSharer),
            DirRule::MsBAckLast => (R::None, N::S, T::None),
            DirRule::MsBAckNotLast => (R::None, N::MsB, T::None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_sizes_match_paper() {
        assert_eq!(CacheResponse::ALL.len(), 3, "cache response library (§III)");
        assert_eq!(CacheState::ALL.len(), 7, "cache next-state library (§III)");
        assert_eq!(
            DirResponse::ALL.len(),
            5,
            "directory response library (§III)"
        );
        assert_eq!(
            DirState::ALL.len(),
            7,
            "directory next-state library (§III)"
        );
        assert_eq!(DirTrack::ALL.len(), 3, "directory track library (§III)");
    }

    #[test]
    fn candidate_space_sizes_match_table_1() {
        let dir_rule: u64 = 5 * 7 * 3;
        let cache_rule: u64 = 3 * 7;
        assert_eq!(
            dir_rule * dir_rule * cache_rule,
            231_525,
            "MSI-small, Table I"
        );
        assert_eq!(
            dir_rule * dir_rule * cache_rule.pow(3),
            102_102_525,
            "MSI-large, Table I"
        );
        // And the wildcard-extended spaces reported for the pruning rows:
        let dir_rule_w: u64 = 6 * 8 * 4;
        let cache_rule_w: u64 = 4 * 8;
        assert_eq!(dir_rule_w * dir_rule_w * cache_rule_w, 1_179_648);
        assert_eq!(dir_rule_w * dir_rule_w * cache_rule_w.pow(3), 1_207_959_552);
    }

    #[test]
    fn names_align_with_libraries() {
        assert_eq!(CacheResponse::NAMES.len(), CacheResponse::ALL.len());
        assert_eq!(CACHE_NEXT_NAMES.len(), CacheState::ALL.len());
        assert_eq!(DirResponse::NAMES.len(), DirResponse::ALL.len());
        assert_eq!(DIR_NEXT_NAMES.len(), DirState::ALL.len());
        assert_eq!(DirTrack::NAMES.len(), DirTrack::ALL.len());
    }

    #[test]
    fn stems_are_unique() {
        let mut stems: Vec<&str> = [
            CacheRule::IsDData,
            CacheRule::ImAdDataComplete,
            CacheRule::ImAdDataPending,
            CacheRule::ImAdAck,
            CacheRule::SmAdDataComplete,
            CacheRule::SmAdDataPending,
            CacheRule::SmAdAck,
            CacheRule::SmAdInv,
            CacheRule::WmAAckLast,
            CacheRule::WmAAckNotLast,
        ]
        .iter()
        .map(|r| r.stem())
        .collect();
        stems.extend(
            [
                DirRule::IsBAck,
                DirRule::ImBAck,
                DirRule::SmBAck,
                DirRule::MsBDataLast,
                DirRule::MsBDataNotLast,
                DirRule::MsBAckLast,
                DirRule::MsBAckNotLast,
            ]
            .iter()
            .map(|r| r.stem()),
        );
        let n = stems.len();
        stems.sort();
        stems.dedup();
        assert_eq!(stems.len(), n);
    }
}
