//! Peterson-style mutual exclusion with synthesizable turn logic.
//!
//! Demonstrates that the VerC3 framework is not coherence-specific: any
//! guarded-command concurrent system with a finite action library fits. Here
//! two processes run Peterson's algorithm with two holes:
//!
//! * on requesting the critical section, which process the `turn` variable
//!   is handed to (`me` or `other`);
//! * in the entry guard, whose turn permits entry (`turn == me` or
//!   `turn == other`).
//!
//! Of the four candidates, exactly two satisfy mutual exclusion and the
//! liveness obligations: Peterson's classic fill — hand the turn to the
//! *other* process, enter when the turn is *mine* — and its mirror image
//! (`turn := me`, enter when the turn is the *other's*), which merely flips
//! the encoding of the turn variable. The two remaining candidates agree on
//! the write and the read of `turn`, let both processes consider themselves
//! favoured simultaneously, and violate mutual exclusion — which the checker
//! reports with a concrete interleaving.

use std::sync::Arc;
use verc3_mck::{HoleSpec, Property, Rule, RuleOutcome, TransitionSystem};

/// Program counter of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pc {
    /// Not competing.
    Idle,
    /// Flag raised, turn surrendered; waiting at the gate.
    Waiting,
    /// Inside the critical section.
    Critical,
}

/// Global state of the two-process mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MutexState {
    /// Program counters.
    pub pc: [Pc; 2],
    /// Intent flags.
    pub flag: [bool; 2],
    /// Whose turn it is to defer.
    pub turn: u8,
}

impl MutexState {
    /// Both processes idle, no intent, turn at process 0.
    pub fn initial() -> Self {
        MutexState {
            pc: [Pc::Idle, Pc::Idle],
            flag: [false, false],
            turn: 0,
        }
    }

    /// Mutual exclusion: both processes in the critical section is an error.
    pub fn mutual_exclusion(&self) -> bool {
        !(self.pc[0] == Pc::Critical && self.pc[1] == Pc::Critical)
    }
}

/// Configuration: which parts of the algorithm are holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutexConfig {
    /// Synthesize the `turn :=` assignment in the request step.
    pub synth_turn: bool,
    /// Synthesize the turn comparison in the entry guard.
    pub synth_guard: bool,
}

impl MutexConfig {
    /// The complete, correct algorithm (verification only).
    pub fn golden() -> Self {
        MutexConfig::default()
    }

    /// Both holes open: 4 candidates, 2 (isomorphic) solutions.
    pub fn synth_both() -> Self {
        MutexConfig {
            synth_turn: true,
            synth_guard: true,
        }
    }
}

struct MutexCore {
    config: MutexConfig,
    turn_spec: HoleSpec,
    guard_spec: HoleSpec,
}

/// Peterson's algorithm as a transition system.
///
/// # Examples
///
/// ```
/// use verc3_protocols::mutex::{MutexConfig, MutexModel};
/// use verc3_core::{SynthOptions, Synthesizer};
///
/// let model = MutexModel::new(MutexConfig::synth_both());
/// let report = Synthesizer::new(SynthOptions::default()).run(&model);
/// // Peterson's fill and its turn-encoding mirror image.
/// assert_eq!(report.solutions().len(), 2);
/// ```
pub struct MutexModel {
    name: String,
    config: MutexConfig,
    rules: Vec<Rule<MutexState>>,
    properties: Vec<Property<MutexState>>,
}

impl std::fmt::Debug for MutexModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexModel")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl MutexModel {
    /// Builds the model.
    pub fn new(config: MutexConfig) -> Self {
        let core = Arc::new(MutexCore {
            config,
            turn_spec: HoleSpec::new("mutex/request/turn", ["me", "other"]),
            guard_spec: HoleSpec::new("mutex/enter/wait-for", ["me", "other"]),
        });

        let mut rules: Vec<Rule<MutexState>> = Vec::new();
        for p in 0..2usize {
            let other = 1 - p;

            // request: raise the flag and surrender (or grab) the turn.
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(
                format!("request[{p}]"),
                move |s: &MutexState, ctx| {
                    if s.pc[p] != Pc::Idle {
                        return RuleOutcome::Disabled;
                    }
                    let give_to_other = if core_.config.synth_turn {
                        match ctx.choose(&core_.turn_spec).action() {
                            Some(a) => a == 1,
                            None => return RuleOutcome::Blocked,
                        }
                    } else {
                        true // golden: turn := other
                    };
                    let mut ns = *s;
                    ns.flag[p] = true;
                    ns.turn = if give_to_other { other as u8 } else { p as u8 };
                    ns.pc[p] = Pc::Waiting;
                    RuleOutcome::Next(ns)
                },
            ));

            // enter: pass the gate when the other is not competing or the
            // turn comparison favours us.
            let core_ = Arc::clone(&core);
            rules.push(Rule::new(
                format!("enter[{p}]"),
                move |s: &MutexState, ctx| {
                    if s.pc[p] != Pc::Waiting {
                        return RuleOutcome::Disabled;
                    }
                    let wait_for_me = if core_.config.synth_guard {
                        match ctx.choose(&core_.guard_spec).action() {
                            Some(a) => a == 0,
                            None => return RuleOutcome::Blocked,
                        }
                    } else {
                        true // golden: enter when turn == me
                    };
                    let favoured = if wait_for_me { p as u8 } else { other as u8 };
                    if !s.flag[other] || s.turn == favoured {
                        let mut ns = *s;
                        ns.pc[p] = Pc::Critical;
                        RuleOutcome::Next(ns)
                    } else {
                        RuleOutcome::Disabled
                    }
                },
            ));

            // exit: leave the critical section and lower the flag.
            rules.push(Rule::new(
                format!("exit[{p}]"),
                move |s: &MutexState, _ctx| {
                    if s.pc[p] != Pc::Critical {
                        return RuleOutcome::Disabled;
                    }
                    let mut ns = *s;
                    ns.pc[p] = Pc::Idle;
                    ns.flag[p] = false;
                    RuleOutcome::Next(ns)
                },
            ));
        }

        let properties = vec![
            Property::invariant("mutual exclusion", MutexState::mutual_exclusion),
            Property::reachable("process 0 enters the critical section", |s: &MutexState| {
                s.pc[0] == Pc::Critical
            }),
            Property::reachable("process 1 enters the critical section", |s: &MutexState| {
                s.pc[1] == Pc::Critical
            }),
            Property::eventually_quiescent("both can return to idle", |s: &MutexState| {
                s.pc == [Pc::Idle, Pc::Idle]
            }),
        ];

        let name = match (config.synth_turn, config.synth_guard) {
            (false, false) => "peterson-mutex".to_owned(),
            _ => "peterson-mutex skeleton".to_owned(),
        };
        MutexModel {
            name,
            config,
            rules,
            properties,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &MutexConfig {
        &self.config
    }
}

impl TransitionSystem for MutexModel {
    type State = MutexState;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_states(&self) -> Vec<MutexState> {
        vec![MutexState::initial()]
    }

    fn rules(&self) -> &[Rule<MutexState>] {
        &self.rules
    }

    fn properties(&self) -> &[Property<MutexState>] {
        &self.properties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_core::{SynthOptions, Synthesizer};
    use verc3_mck::{Checker, CheckerOptions, FailureKind, FixedResolver, Verdict};

    #[test]
    fn golden_peterson_verifies() {
        let model = MutexModel::new(MutexConfig::golden());
        let out = Checker::new(CheckerOptions::default()).run(&model);
        assert_eq!(
            out.verdict(),
            Verdict::Success,
            "golden Peterson must verify: {:?}",
            out.failure().map(|f| f.to_string())
        );
    }

    #[test]
    fn synthesis_finds_peterson_and_its_mirror() {
        let model = MutexModel::new(MutexConfig::synth_both());
        let report = Synthesizer::new(SynthOptions::default()).run(&model);
        assert_eq!(report.naive_candidate_space(), 4);
        let mut named: Vec<String> = report
            .solutions()
            .iter()
            .map(|s| s.display_named(report.holes()))
            .collect();
        named.sort();
        assert_eq!(
            named,
            vec![
                // The mirror image: flipped turn encoding, same behaviour.
                "⟨ mutex/request/turn@me, mutex/enter/wait-for@other ⟩",
                // Peterson's classic assignment.
                "⟨ mutex/request/turn@other, mutex/enter/wait-for@me ⟩",
            ]
        );
    }

    #[test]
    fn selfish_turn_assignment_breaks_mutual_exclusion() {
        // turn := me on request; wait until turn == me at the gate. After
        // P0 enters (turn = 0), P1's request rewrites turn to 1 and P1
        // sails straight through the gate: both end up critical.
        let model = MutexModel::new(MutexConfig::synth_both());
        let mut r = FixedResolver::from_pairs([
            ("mutex/request/turn", 0usize),
            ("mutex/enter/wait-for", 0usize),
        ]);
        let out = Checker::new(CheckerOptions::default()).run_with(&model, &mut r);
        assert_eq!(out.verdict(), Verdict::Failure);
        let failure = out.failure().unwrap();
        assert_eq!(failure.kind, FailureKind::InvariantViolation);
        assert_eq!(failure.property, "mutual exclusion");
        // The counterexample is a concrete interleaving ending with both
        // processes critical.
        let last = &failure.trace.as_ref().unwrap().last_state();
        assert_eq!(last.pc, [Pc::Critical, Pc::Critical]);
    }

    #[test]
    fn inverted_guard_breaks_mutual_exclusion() {
        // turn := other on request (correct), but enter when turn == OTHER:
        // both processes pass the gate together.
        let model = MutexModel::new(MutexConfig::synth_both());
        let mut r = FixedResolver::from_pairs([
            ("mutex/request/turn", 1usize),
            ("mutex/enter/wait-for", 1usize),
        ]);
        let out = Checker::new(CheckerOptions::default()).run_with(&model, &mut r);
        assert_eq!(out.verdict(), Verdict::Failure);
        let failure = out.failure().unwrap();
        assert_eq!(failure.kind, FailureKind::InvariantViolation);
        assert_eq!(failure.property, "mutual exclusion");
    }
}
