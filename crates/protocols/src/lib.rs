//! # verc3-protocols — protocol case studies for VerC3
//!
//! Concurrent-system models built on the `verc3-mck` modelling framework and
//! synthesizable with `verc3-core`:
//!
//! * [`msi`] — the paper's case study: a directory-based MSI cache-coherence
//!   protocol over an unordered interconnect, with the transient-state
//!   actions exposed as synthesis holes (MSI-small: 8 holes, MSI-large: 12
//!   holes, exactly as in §III and Table I).
//! * [`vi`] — a minimal VI (Valid/Invalid) coherence protocol: the smallest
//!   realistic synthesis exercise, used by the quickstart example.
//! * [`mesi`] — a MESI extension of the MSI model (Exclusive state),
//!   following the paper's future-work direction of widening the tool's
//!   scope.
//! * [`mutex`] — a Peterson-style mutual-exclusion model, showing the
//!   framework is not coherence-specific.
//!
//! All models implement [`verc3_mck::TransitionSystem`] and can be verified
//! with [`verc3_mck::Checker`] or synthesized with
//! `verc3_core::Synthesizer`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mesi;
pub mod msi;
pub mod mutex;
pub mod vi;
