//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and uniform integer sampling through
//! [`Rng::gen_range`] — on top of a SplitMix64 generator. Deterministic by
//! construction; not cryptographically secure. See `crates/compat/README.md`.

use std::ops::Range;

/// Bundled pseudo-random number generators.
pub mod rngs {
    /// A deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

/// Core generation plus the sampling helpers this workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_from(self.next_u64(), range)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Integer types uniformly sampleable from a [`Range`].
pub trait SampleUniform: Sized {
    /// Maps 64 random bits into `range` (modulo reduction; the bias is
    /// negligible for the small ranges used here).
    fn sample_from(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(bits: u64, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                (lo + ((bits as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }
}
