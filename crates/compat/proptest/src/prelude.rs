//! The glob-importable prelude (`use proptest::prelude::*;`).

pub use crate::prop;
pub use crate::strategy::Strategy;
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
