//! The [`Strategy`] trait and the built-in integer-range strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// The shim collapses proptest's `Strategy`/`ValueTree` pair into a single
/// generation method — no shrinking (see `crates/compat/README.md`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range {}..{}", self.start, self.end);
                let span = (hi - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample from empty inclusive range");
                let span = (hi - lo) as u128 + 1;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_range_never_yields_the_end() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..500 {
            let v = (0u8..3).generate(&mut rng);
            assert!(v < 3);
        }
    }

    #[test]
    fn inclusive_range_can_yield_the_end() {
        let mut rng = TestRng::for_case(1);
        let mut saw_end = false;
        for _ in 0..200 {
            let v = (0u8..=2).generate(&mut rng);
            assert!(v <= 2);
            saw_end |= v == 2;
        }
        assert!(saw_end);
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::for_case(2);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
