//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * integer-range strategies (`0u64..50_000`) and
//!   `prop::collection::vec(strategy, len_range)`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Cases are generated from a fixed, deterministic per-case seed so failures
//! are reproducible run to run; there is **no shrinking** — a failing case
//! reports its case index instead. See `crates/compat/README.md`.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of proptest's `prelude::prop` module.
pub mod prop {
    pub use crate::collection;
}

/// Declares property tests over strategy-generated inputs.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///
///     #[test]
///     fn name(pattern in strategy_expr, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(|__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            __proptest_rng,
                        );
                    )+
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts a condition, failing the current case (not the process) on `false`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, failing the current case on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality, failing the current case on equality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_strategy_respects_length(mut items in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            items.sort();
            prop_assert!(items.iter().all(|&v| v < 5));
        }
    }

    #[test]
    fn failing_case_panics_with_case_index() {
        let result = std::panic::catch_unwind(|| {
            let mut runner =
                crate::test_runner::TestRunner::new(crate::test_runner::Config::with_cases(4));
            runner.run_cases(|_rng| Err(crate::test_runner::TestCaseError::fail("forced failure")));
        });
        let err = result.expect_err("runner must panic on a failing case");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("case 0"), "{msg}");
        assert!(msg.contains("forced failure"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u16..100, 3..7);
        let run = || {
            let mut rng = crate::test_runner::TestRng::for_case(5);
            crate::strategy::Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
