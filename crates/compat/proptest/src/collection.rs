//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range {}..{}",
        len.start,
        len.end
    );
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let strat = vec(2u32..9, 0..5);
        let mut rng = TestRng::for_case(3);
        let mut saw_empty = false;
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| (2..9).contains(&x)));
            saw_empty |= v.is_empty();
        }
        assert!(saw_empty, "length 0 must be reachable from a 0.. range");
    }
}
