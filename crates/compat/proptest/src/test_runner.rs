//! Case runner, configuration, and the deterministic RNG behind strategies.

/// Property-test configuration (proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// A failed test case, carrying its failure message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Deterministic SplitMix64 generator feeding the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the `case`-th case of a test run. Fixed seeds make
    /// every run (and every CI machine) generate the same inputs.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x5157_8a1c_6e4f_20d9 ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `body` once per case with a fresh deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose body
    /// returns an error, reporting the case index for replay.
    pub fn run_cases<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::for_case(case);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest case {case} of {} failed: {}",
                    self.config.cases,
                    e.message()
                );
            }
        }
    }
}
