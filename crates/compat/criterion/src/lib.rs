//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! warm-up pass plus `sample_size` timed samples and prints the mean time per
//! iteration — no statistics, baselines, or HTML reports. See
//! `crates/compat/README.md`.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        run_benchmark(&id.into(), samples, f);
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up (also determines a single-iteration cost for reporting).
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);

    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        iterations += bencher.iterations;
    }
    let mean = if iterations > 0 {
        total / iterations as u32
    } else {
        Duration::ZERO
    };
    println!("  {id:<44} time: {mean:>12.3?}  ({samples} samples)");
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine` (criterion would auto-scale the
    /// iteration count; the shim runs exactly one per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_function_times_the_routine() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
