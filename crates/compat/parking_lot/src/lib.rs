//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Implements the subset of the API this workspace uses: [`Mutex`] and
//! [`RwLock`] whose lock methods return guards directly (no poisoning —
//! a poisoned std lock is recovered transparently, matching parking_lot's
//! panic-safety semantics). See `crates/compat/README.md`.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock stays usable after a panic.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
