//! Schema layer: TOML document → validated raw declarations →
//! [`ProtocolSpec`].
//!
//! A spec document has the sections:
//!
//! ```toml
//! [protocol]        # name, pids (scalarset size, 1..=8), symmetry
//! [consts]          # named integer constants
//! [enums]           # Name = ["Variant", …]   (order = Ord order)
//! [records.Name]    # fields = ["name: type", …]
//! [vars]            # name = "type"           (order = state Ord order)
//! [libs]            # name = ["action", …]    (hole action libraries)
//! [[hole]]          # name, lib
//! [[fn]]            # name, params, body (statements) or expr
//! [[rule]]          # name, body — sugar for a ruleset with no binders
//! [[ruleset]]       # binds = ["c: pid", "k: Enum in [A, B]", "r: rank"]
//!   [[ruleset.rule]]# name (with {binder} interpolation), body
//! [[property]]      # kind = invariant|reachable|eventually_quiescent, name, expr
//! [golden]          # verdict/states/transitions (+ .assignment, .synth)
//! ```
//!
//! The type grammar: `bool`, `int`, `pid`, `pidset`, `option<T>`,
//! `multiset<T>`, `array[pid] of T`, plus declared enum and record names.
//!
//! The initial state is the all-defaults state: enums at variant 0, ints
//! at 0, pids at 0, options `none`, sets and multisets empty.

use std::path::Path;
use std::sync::Arc;

use crate::ast::{Expr, Stmt};
use crate::error::InvalidSpec;
use crate::interp::{compile, CompiledSpec, SpecModel};
use crate::parse::{parse_block, parse_expr};
use crate::toml::{self, Table, TomlValue};

/// A reference to a declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TypeRef {
    Bool,
    Int,
    Pid,
    PidSet,
    Enum(usize),
    Record(usize),
    Option(Box<TypeRef>),
    Multiset(Box<TypeRef>),
    Array(Box<TypeRef>),
    /// The type of polymorphic literals (`none`); compatible with anything.
    Unknown,
}

impl TypeRef {
    /// Structural compatibility, treating [`TypeRef::Unknown`] as a wildcard.
    pub(crate) fn compatible(&self, other: &TypeRef) -> bool {
        match (self, other) {
            (TypeRef::Unknown, _) | (_, TypeRef::Unknown) => true,
            (TypeRef::Option(a), TypeRef::Option(b)) => a.compatible(b),
            (TypeRef::Multiset(a), TypeRef::Multiset(b)) => a.compatible(b),
            (TypeRef::Array(a), TypeRef::Array(b)) => a.compatible(b),
            (a, b) => a == b,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct EnumDecl {
    pub name: String,
    pub variants: Vec<String>,
}

#[derive(Debug, Clone)]
pub(crate) struct RecordDecl {
    pub name: String,
    pub fields: Vec<(String, TypeRef)>,
}

#[derive(Debug, Clone)]
pub(crate) struct LibDecl {
    pub name: String,
    pub actions: Vec<String>,
}

#[derive(Debug, Clone)]
pub(crate) struct HoleDecl {
    pub name: String,
    pub lib: usize,
}

#[derive(Debug, Clone)]
pub(crate) enum FnBody {
    Stmts(Vec<Stmt>),
    Expr(Expr),
}

#[derive(Debug, Clone)]
pub(crate) struct FnDecl {
    pub name: String,
    pub params: Vec<(String, TypeRef)>,
    pub body: FnBody,
}

#[derive(Debug, Clone)]
pub(crate) enum BinderDomain {
    /// `0..pids` as pid values.
    Pid,
    /// `0..pids` as int values (message delivery ranks).
    Rank,
    /// A subset of an enum's variants, in the listed order.
    EnumSubset(usize, Vec<u8>),
}

#[derive(Debug, Clone)]
pub(crate) struct Binder {
    pub name: String,
    pub domain: BinderDomain,
}

#[derive(Debug, Clone)]
pub(crate) struct RawRule {
    pub name_template: String,
    pub body: Vec<Stmt>,
}

#[derive(Debug, Clone)]
pub(crate) struct RawRuleSet {
    pub binds: Vec<Binder>,
    pub rules: Vec<RawRule>,
}

/// Property kinds, mirroring [`verc3_mck::Property`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PropKind {
    Invariant,
    Reachable,
    EventuallyQuiescent,
}

#[derive(Debug, Clone)]
pub(crate) struct PropDecl {
    pub kind: PropKind,
    pub name: String,
    pub expr: Expr,
}

/// Committed golden counts for a spec, used by the self-gating binaries and
/// the protocol-zoo CI job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecGolden {
    /// Expected verdict under the golden assignment (e.g. `"Success"`).
    pub verdict: Option<String>,
    /// Expected visited-state count under the golden assignment.
    pub states: Option<usize>,
    /// Expected transition count under the golden assignment.
    pub transitions: Option<usize>,
    /// Hole name → action name of the known-correct completion.
    pub assignment: Vec<(String, String)>,
    /// Expected synthesis run count (pruned, single thread).
    pub synth_evaluated: Option<u64>,
    /// Expected pruning-pattern count.
    pub synth_patterns: Option<u64>,
    /// Expected solution count.
    pub synth_solutions: Option<usize>,
    /// Pattern mode the synthesis goldens were measured under: `true` for
    /// trace-refined patterns (the paper's Cₜ, what the bench tables use),
    /// `false` for the default exact mode.
    pub synth_refined: bool,
}

impl SpecGolden {
    /// `true` if any verification golden (verdict/states/transitions) is
    /// committed.
    pub fn gates_verification(&self) -> bool {
        self.verdict.is_some() || self.states.is_some() || self.transitions.is_some()
    }

    /// `true` if synthesis goldens are committed.
    pub fn gates_synthesis(&self) -> bool {
        self.synth_evaluated.is_some()
            || self.synth_patterns.is_some()
            || self.synth_solutions.is_some()
    }
}

/// All raw declarations of a spec document, before compilation.
#[derive(Debug, Clone)]
pub(crate) struct RawSpec {
    pub name: String,
    pub pids: usize,
    pub symmetry: bool,
    pub consts: Vec<(String, i64)>,
    pub enums: Vec<EnumDecl>,
    pub records: Vec<RecordDecl>,
    pub vars: Vec<(String, TypeRef)>,
    pub libs: Vec<LibDecl>,
    pub holes: Vec<HoleDecl>,
    pub fns: Vec<FnDecl>,
    pub rulesets: Vec<RawRuleSet>,
    pub props: Vec<PropDecl>,
}

/// A loaded, validated, compiled protocol description.
#[derive(Clone)]
pub struct ProtocolSpec {
    pub(crate) compiled: Arc<CompiledSpec>,
    golden: SpecGolden,
}

impl ProtocolSpec {
    /// Parses, validates and compiles a spec from TOML text.
    pub fn from_toml_str(src: &str) -> Result<Self, InvalidSpec> {
        let root = toml::parse(src)?;
        let (raw, golden) = read_raw(&root)?;
        let compiled = compile(raw)?;
        Ok(ProtocolSpec {
            compiled: Arc::new(compiled),
            golden,
        })
    }

    /// Loads a spec from a file.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, InvalidSpec> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| InvalidSpec::Schema {
            context: path.display().to_string(),
            message: format!("cannot read spec file: {e}"),
        })?;
        Self::from_toml_str(&src)
    }

    /// The protocol's display name.
    pub fn name(&self) -> &str {
        &self.compiled.name
    }

    /// The declared scalarset size.
    pub fn pids(&self) -> usize {
        self.compiled.pids
    }

    /// The committed golden counts (may be empty).
    pub fn golden(&self) -> &SpecGolden {
        &self.golden
    }

    /// Declared holes as `(name, arity)` pairs, in declaration order.
    pub fn hole_space(&self) -> Vec<(String, usize)> {
        self.compiled
            .holes
            .iter()
            .map(|h| (h.name.clone(), h.spec.arity()))
            .collect()
    }

    /// Resolves a golden-assignment action name to its library index.
    pub fn action_index(&self, hole: &str, action: &str) -> Option<usize> {
        let h = self.compiled.holes.iter().find(|h| h.name == hole)?;
        h.spec.actions().iter().position(|a| a == action)
    }

    /// Builds the interpreted transition system.
    pub fn model(&self) -> SpecModel {
        SpecModel::new(Arc::clone(&self.compiled))
    }
}

impl std::fmt::Debug for ProtocolSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolSpec")
            .field("name", &self.compiled.name)
            .field("pids", &self.compiled.pids)
            .field("holes", &self.compiled.holes.len())
            .finish_non_exhaustive()
    }
}

// ---- Schema reading --------------------------------------------------------

fn schema_err(context: &str, message: impl Into<String>) -> InvalidSpec {
    InvalidSpec::Schema {
        context: context.to_string(),
        message: message.into(),
    }
}

fn read_raw(root: &Table) -> Result<(RawSpec, SpecGolden), InvalidSpec> {
    let proto = root
        .get_table("protocol")
        .ok_or_else(|| schema_err("[protocol]", "missing section"))?;
    let name = proto
        .get_str("name")
        .ok_or_else(|| schema_err("[protocol]", "missing `name`"))?
        .to_string();
    let pids = proto
        .get_int("pids")
        .ok_or_else(|| schema_err("[protocol]", "missing `pids`"))?;
    if !(1..=8).contains(&pids) {
        return Err(schema_err("[protocol]", "`pids` must be in 1..=8"));
    }
    let pids = pids as usize;
    let symmetry = proto.get_bool("symmetry").unwrap_or(false);

    let mut consts = Vec::new();
    if let Some(t) = root.get_table("consts") {
        for (k, v) in &t.entries {
            match v {
                TomlValue::Int(i) => consts.push((k.clone(), *i)),
                _ => return Err(schema_err("[consts]", format!("`{k}` must be an integer"))),
            }
        }
    }

    // Enums.
    let mut enums = Vec::new();
    if let Some(t) = root.get_table("enums") {
        for (k, _) in &t.entries {
            let variants = t
                .get_str_array(k)
                .ok_or_else(|| schema_err("[enums]", format!("`{k}` must be a string array")))?;
            if variants.is_empty() || variants.len() > 255 {
                return Err(schema_err(
                    "[enums]",
                    format!("`{k}` needs 1..=255 variants"),
                ));
            }
            check_unique(
                "[enums]",
                &variants.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )?;
            if enums.iter().any(|e: &EnumDecl| e.name == *k) {
                return Err(InvalidSpec::DuplicateName {
                    context: "[enums]".into(),
                    name: k.clone(),
                });
            }
            enums.push(EnumDecl {
                name: k.clone(),
                variants: variants.into_iter().map(String::from).collect(),
            });
        }
    }

    // Records: two passes so records may reference records declared later.
    let mut records: Vec<RecordDecl> = Vec::new();
    let record_tables: Vec<(String, &Table)> = match root.get_table("records") {
        Some(t) => t
            .entries
            .iter()
            .map(|(k, v)| match v {
                TomlValue::Table(rt) => Ok((k.clone(), rt)),
                _ => Err(schema_err("[records]", format!("`{k}` must be a table"))),
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    for (k, _) in &record_tables {
        if records.iter().any(|r| r.name == *k) || enums.iter().any(|e| e.name == *k) {
            return Err(InvalidSpec::DuplicateName {
                context: "[records]".into(),
                name: k.clone(),
            });
        }
        records.push(RecordDecl {
            name: k.clone(),
            fields: Vec::new(),
        });
    }
    for (k, rt) in &record_tables {
        let fields = rt.get_str_array("fields").ok_or_else(|| {
            schema_err("[records]", format!("`{k}` needs a `fields` string array"))
        })?;
        let mut parsed = Vec::new();
        for f in fields {
            let (fname, ftype) = split_decl(f, &format!("[records.{k}]"))?;
            if parsed.iter().any(|(n, _)| *n == fname) {
                return Err(InvalidSpec::DuplicateName {
                    context: format!("[records.{k}]"),
                    name: fname,
                });
            }
            let ty = parse_type(&ftype, &enums, &records, &format!("[records.{k}]"))?;
            parsed.push((fname, ty));
        }
        let idx = records
            .iter()
            .position(|r| r.name == *k)
            .expect("pre-registered");
        records[idx].fields = parsed;
    }

    // Variables.
    let vars_table = root
        .get_table("vars")
        .ok_or_else(|| schema_err("[vars]", "missing section"))?;
    let mut vars = Vec::new();
    for (k, v) in &vars_table.entries {
        let ty_str = match v {
            TomlValue::Str(s) => s,
            _ => return Err(schema_err("[vars]", format!("`{k}` must be a type string"))),
        };
        if vars.iter().any(|(n, _): &(String, TypeRef)| n == k) {
            return Err(InvalidSpec::DuplicateName {
                context: "[vars]".into(),
                name: k.clone(),
            });
        }
        vars.push((k.clone(), parse_type(ty_str, &enums, &records, "[vars]")?));
    }
    if vars.is_empty() {
        return Err(schema_err(
            "[vars]",
            "a protocol needs at least one variable",
        ));
    }

    // Equivariance contract for the symmetry annotation.
    if symmetry {
        match &vars[0].1 {
            TypeRef::Array(elem) => {
                if type_contains_pid(elem, &records) {
                    return Err(InvalidSpec::NonEquivariant {
                        reason: format!(
                            "the leading array `{}` has pid-typed leaves in its elements, \
                             so rank keys are not permutation covariant",
                            vars[0].0
                        ),
                    });
                }
            }
            _ => {
                return Err(InvalidSpec::NonEquivariant {
                    reason: format!(
                        "`symmetry = true` requires the first variable `{}` to be an \
                         `array[pid] of …` (it anchors the canonicalization signature)",
                        vars[0].0
                    ),
                })
            }
        }
    }

    // Libraries.
    let mut libs = Vec::new();
    if let Some(t) = root.get_table("libs") {
        for (k, _) in &t.entries {
            let actions = t
                .get_str_array(k)
                .ok_or_else(|| schema_err("[libs]", format!("`{k}` must be a string array")))?;
            if actions.is_empty() {
                return Err(schema_err(
                    "[libs]",
                    format!("`{k}` must offer at least one action"),
                ));
            }
            if libs.iter().any(|l: &LibDecl| l.name == *k) {
                return Err(InvalidSpec::DuplicateName {
                    context: "[libs]".into(),
                    name: k.clone(),
                });
            }
            libs.push(LibDecl {
                name: k.clone(),
                actions: actions.into_iter().map(String::from).collect(),
            });
        }
    }

    // Holes.
    let mut holes = Vec::new();
    for h in root.get_table_array("hole") {
        let hname = h
            .get_str("name")
            .ok_or_else(|| schema_err("[[hole]]", "missing `name`"))?;
        let lib_name = h
            .get_str("lib")
            .ok_or_else(|| schema_err("[[hole]]", "missing `lib`"))?;
        if holes.iter().any(|x: &HoleDecl| x.name == hname) {
            return Err(InvalidSpec::DuplicateName {
                context: "[[hole]]".into(),
                name: hname.to_string(),
            });
        }
        let lib = libs
            .iter()
            .position(|l| l.name == lib_name)
            .ok_or_else(|| InvalidSpec::UnknownName {
                context: format!("[[hole]] {hname}"),
                name: lib_name.to_string(),
            })?;
        holes.push(HoleDecl {
            name: hname.to_string(),
            lib,
        });
    }

    // Functions.
    let mut fns = Vec::new();
    for f in root.get_table_array("fn") {
        let fname = f
            .get_str("name")
            .ok_or_else(|| schema_err("[[fn]]", "missing `name`"))?
            .to_string();
        if fns.iter().any(|x: &FnDecl| x.name == fname) {
            return Err(InvalidSpec::DuplicateName {
                context: "[[fn]]".into(),
                name: fname,
            });
        }
        let mut params = Vec::new();
        if let Some(ps) = f.get_str_array("params") {
            for p in ps {
                let (pname, ptype) = split_decl(p, &format!("[[fn]] {fname}"))?;
                params.push((
                    pname,
                    parse_type(&ptype, &enums, &records, &format!("[[fn]] {fname}"))?,
                ));
            }
        }
        let body = match (f.get_str("body"), f.get_str("expr")) {
            (Some(b), None) => FnBody::Stmts(parse_block(b, &format!("fn {fname}"))?),
            (None, Some(e)) => FnBody::Expr(parse_expr(e, &format!("fn {fname}"))?),
            _ => {
                return Err(schema_err(
                    &format!("[[fn]] {fname}"),
                    "needs exactly one of `body` (statements) or `expr`",
                ))
            }
        };
        fns.push(FnDecl {
            name: fname,
            params,
            body,
        });
    }

    // Rules and rulesets, in document order. Standalone [[rule]] entries are
    // rulesets with no binders; their order relative to [[ruleset]] entries
    // follows the TOML entry order of the two keys (rules first if the
    // first [[rule]] appears before the first [[ruleset]]).
    let mut rulesets = Vec::new();
    let mut ordered_sections: Vec<(&str, usize)> = Vec::new();
    for (idx, (k, _)) in root.entries.iter().enumerate() {
        if k == "rule" || k == "ruleset" {
            ordered_sections.push((k.as_str(), idx));
        }
    }
    ordered_sections.sort_by_key(|(_, idx)| *idx);
    for (kind, _) in ordered_sections {
        if kind == "rule" {
            for r in root.get_table_array("rule") {
                rulesets.push(RawRuleSet {
                    binds: Vec::new(),
                    rules: vec![read_rule(r, &[], "[[rule]]")?],
                });
            }
        } else {
            for rs in root.get_table_array("ruleset") {
                let mut binds = Vec::new();
                if let Some(bs) = rs.get_str_array("binds") {
                    for b in bs {
                        binds.push(parse_binder(b, &enums, "[[ruleset]]")?);
                    }
                }
                let rule_tables = rs.get_table_array("rule");
                if rule_tables.is_empty() {
                    return Err(schema_err(
                        "[[ruleset]]",
                        "needs at least one [[ruleset.rule]]",
                    ));
                }
                let mut rules = Vec::new();
                for r in rule_tables {
                    rules.push(read_rule(r, &binds, "[[ruleset.rule]]")?);
                }
                rulesets.push(RawRuleSet { binds, rules });
            }
        }
    }
    if rulesets.is_empty() {
        return Err(schema_err("[[rule]]", "a protocol needs at least one rule"));
    }

    // Properties.
    let mut props = Vec::new();
    for p in root.get_table_array("property") {
        let pname = p
            .get_str("name")
            .ok_or_else(|| schema_err("[[property]]", "missing `name`"))?
            .to_string();
        let kind = match p.get_str("kind") {
            Some("invariant") => PropKind::Invariant,
            Some("reachable") => PropKind::Reachable,
            Some("eventually_quiescent") => PropKind::EventuallyQuiescent,
            other => {
                return Err(schema_err(
                    &format!("[[property]] {pname}"),
                    format!("kind must be invariant|reachable|eventually_quiescent, got {other:?}"),
                ))
            }
        };
        let expr_src = p
            .get_str("expr")
            .ok_or_else(|| schema_err(&format!("[[property]] {pname}"), "missing `expr`"))?;
        props.push(PropDecl {
            kind,
            name: pname.clone(),
            expr: parse_expr(expr_src, &format!("property {pname}"))?,
        });
    }
    if props.is_empty() {
        return Err(schema_err(
            "[[property]]",
            "a protocol needs at least one property",
        ));
    }

    // Goldens.
    let mut golden = SpecGolden::default();
    if let Some(g) = root.get_table("golden") {
        golden.verdict = g.get_str("verdict").map(String::from);
        golden.states = g.get_int("states").map(|i| i as usize);
        golden.transitions = g.get_int("transitions").map(|i| i as usize);
        if let Some(a) = g.get_table("assignment") {
            for (k, v) in &a.entries {
                match v {
                    TomlValue::Str(s) => golden.assignment.push((k.clone(), s.clone())),
                    _ => {
                        return Err(schema_err(
                            "[golden.assignment]",
                            format!("`{k}` must be an action name string"),
                        ))
                    }
                }
            }
        }
        if let Some(s) = g.get_table("synth") {
            golden.synth_evaluated = s.get_int("evaluated").map(|i| i as u64);
            golden.synth_patterns = s.get_int("patterns").map(|i| i as u64);
            golden.synth_solutions = s.get_int("solutions").map(|i| i as usize);
            golden.synth_refined = s.get_bool("refined").unwrap_or(false);
        }
    }
    // Golden assignments must reference declared holes and actions.
    for (hole, action) in &golden.assignment {
        let h = holes
            .iter()
            .find(|h| h.name == *hole)
            .ok_or_else(|| InvalidSpec::UnknownName {
                context: "[golden.assignment]".into(),
                name: hole.clone(),
            })?;
        if !libs[h.lib].actions.iter().any(|a| a == action) {
            return Err(InvalidSpec::UnknownName {
                context: format!("[golden.assignment] {hole}"),
                name: action.clone(),
            });
        }
    }

    Ok((
        RawSpec {
            name,
            pids,
            symmetry,
            consts,
            enums,
            records,
            vars,
            libs,
            holes,
            fns,
            rulesets,
            props,
        },
        golden,
    ))
}

fn read_rule(t: &Table, _binds: &[Binder], context: &str) -> Result<RawRule, InvalidSpec> {
    let name = t
        .get_str("name")
        .ok_or_else(|| schema_err(context, "missing `name`"))?
        .to_string();
    let body_src = t
        .get_str("body")
        .ok_or_else(|| schema_err(&format!("{context} {name}"), "missing `body`"))?;
    Ok(RawRule {
        name_template: name.clone(),
        body: parse_block(body_src, &format!("rule {name}"))?,
    })
}

/// Splits a `"name: type"` declaration string.
fn split_decl(s: &str, context: &str) -> Result<(String, String), InvalidSpec> {
    match s.split_once(':') {
        Some((n, t)) => Ok((n.trim().to_string(), t.trim().to_string())),
        None => Err(schema_err(
            context,
            format!("`{s}` is not a `name: type` pair"),
        )),
    }
}

fn parse_binder(s: &str, enums: &[EnumDecl], context: &str) -> Result<Binder, InvalidSpec> {
    let (name, dom) = split_decl(s, context)?;
    let domain =
        if dom == "pid" {
            BinderDomain::Pid
        } else if dom == "rank" {
            BinderDomain::Rank
        } else {
            // `EnumName` (all variants) or `EnumName in [A, B, …]`.
            let (ename, subset) = match dom.split_once(" in ") {
                Some((e, list)) => (e.trim(), Some(list.trim())),
                None => (dom.as_str(), None),
            };
            let eidx = enums.iter().position(|e| e.name == ename).ok_or_else(|| {
                InvalidSpec::UnknownName {
                    context: context.to_string(),
                    name: ename.to_string(),
                }
            })?;
            let variants = match subset {
                None => (0..enums[eidx].variants.len() as u8).collect(),
                Some(list) => {
                    let inner = list
                        .strip_prefix('[')
                        .and_then(|l| l.strip_suffix(']'))
                        .ok_or_else(|| {
                            schema_err(context, format!("`{dom}`: subset must be `[A, B, …]`"))
                        })?;
                    let mut out = Vec::new();
                    for v in inner.split(',') {
                        let v = v.trim();
                        let vi = enums[eidx]
                            .variants
                            .iter()
                            .position(|x| x == v)
                            .ok_or_else(|| InvalidSpec::UnknownName {
                                context: format!("{context} binder `{name}`"),
                                name: v.to_string(),
                            })?;
                        out.push(vi as u8);
                    }
                    out
                }
            };
            BinderDomain::EnumSubset(eidx, variants)
        };
    Ok(Binder { name, domain })
}

fn parse_type(
    s: &str,
    enums: &[EnumDecl],
    records: &[RecordDecl],
    context: &str,
) -> Result<TypeRef, InvalidSpec> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("option<").and_then(|x| x.strip_suffix('>')) {
        return Ok(TypeRef::Option(Box::new(parse_type(
            inner, enums, records, context,
        )?)));
    }
    if let Some(inner) = s
        .strip_prefix("multiset<")
        .and_then(|x| x.strip_suffix('>'))
    {
        return Ok(TypeRef::Multiset(Box::new(parse_type(
            inner, enums, records, context,
        )?)));
    }
    if let Some(inner) = s.strip_prefix("array[pid] of ") {
        return Ok(TypeRef::Array(Box::new(parse_type(
            inner, enums, records, context,
        )?)));
    }
    match s {
        "bool" => Ok(TypeRef::Bool),
        "int" => Ok(TypeRef::Int),
        "pid" => Ok(TypeRef::Pid),
        "pidset" => Ok(TypeRef::PidSet),
        name => {
            if let Some(i) = enums.iter().position(|e| e.name == name) {
                Ok(TypeRef::Enum(i))
            } else if let Some(i) = records.iter().position(|r| r.name == name) {
                Ok(TypeRef::Record(i))
            } else {
                Err(InvalidSpec::UnknownName {
                    context: context.to_string(),
                    name: name.to_string(),
                })
            }
        }
    }
}

/// `true` if the type has a pid-valued leaf (pid or pidset) anywhere.
pub(crate) fn type_contains_pid(t: &TypeRef, records: &[RecordDecl]) -> bool {
    match t {
        TypeRef::Bool | TypeRef::Int | TypeRef::Enum(_) | TypeRef::Unknown => false,
        TypeRef::Pid | TypeRef::PidSet => true,
        TypeRef::Option(inner) | TypeRef::Multiset(inner) | TypeRef::Array(inner) => {
            type_contains_pid(inner, records)
        }
        TypeRef::Record(r) => records[*r]
            .fields
            .iter()
            .any(|(_, ft)| type_contains_pid(ft, records)),
    }
}

fn check_unique(context: &str, names: &[String]) -> Result<(), InvalidSpec> {
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            return Err(InvalidSpec::DuplicateName {
                context: context.to_string(),
                name: n.clone(),
            });
        }
    }
    Ok(())
}
