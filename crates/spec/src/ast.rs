//! Untyped syntax trees for the guard/effect language.
//!
//! The parser resolves nothing: `Field(Var("CacheState"), "I")` may be an
//! enum literal, `Index(Var("DirState"), e)` an enum cast, `Call("send", …)`
//! a spec-level fn or a builtin. The compiler in [`crate::interp`] resolves
//! names against the declared types and produces typed, slot-addressed IR.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The `none` option literal.
    None_,
    /// The directory/home agent id (`DIR` = the pid just past the scalarset).
    Dir,
    /// A bare name: variable, local, const, or type/lib prefix.
    Var(String),
    /// `base.field` (also `Enum.Variant`, `lib.action`).
    Field(Box<Expr>, String),
    /// `base[index]` (also `Enum[expr]` casts).
    Index(Box<Expr>, Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `e in [a, b, c]` membership sugar.
    InList(Box<Expr>, Vec<Expr>),
    /// `name(args…)`: builtin, expression fn, or record constructor.
    Call(String, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `require expr;` — guard; a false value disables the rule.
    Require(Expr),
    /// `let name = expr;` — bind a local.
    Let(String, Expr),
    /// `choose name = hole("hole-name");` — consult a synthesis hole.
    Choose(String, String),
    /// `lvalue = expr;` — assign to state or to a local.
    Assign(LValue, Expr),
    /// `if … { } elif … { } else { }`.
    If(Vec<(Expr, Vec<Stmt>)>, Vec<Stmt>),
    /// `for name in pids { … }`.
    ForPids(String, Vec<Stmt>),
    /// `name(args…);` — statement fn or builtin (`add`, `remove`).
    Call(String, Vec<Expr>),
}

/// An assignment target: a base name plus field/index path.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// The base variable or local name.
    pub base: String,
    /// The access path.
    pub path: Vec<PathSeg>,
}

/// One step of an lvalue path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathSeg {
    /// `.field`
    Field(String),
    /// `[index]`
    Index(Expr),
}
