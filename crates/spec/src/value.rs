//! The interpreted state representation.
//!
//! A [`SpecState`] is a vector of [`Value`] trees, one per declared
//! variable, compared lexicographically in declaration order. Within any
//! well-typed spec a given slot always holds the same `Value` variant, so
//! the derived `Ord` reduces to the payload order — which makes the
//! interpreted state **order-isomorphic** to an equivalent hand-written
//! struct with `#[derive(Ord)]`: the canonicalization argmin picks
//! corresponding representatives, and golden counts transfer bit-for-bit.
//!
//! Symmetry is structural: a permutation of the pid scalarset remaps
//! `Pid` leaves (< n; the `DIR` agent id `n` is fixed), `PidSet` bits, and
//! pid-indexed `Array` positions, rebuilds `Multi` multisets in canonical
//! order, and recurses through records and options.

use verc3_mck::scalarset::{rank_keys, Symmetric};
use verc3_mck::Multiset;

/// A single interpreted value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bounded integer (arithmetic is checked into `0..=255`).
    Int(u8),
    /// A process id (`0..n`), or the fixed `DIR` agent (`n`).
    Pid(u8),
    /// An enum value: (enum type id, variant index). Variant order in the
    /// spec is the comparison order, mirroring Rust `#[derive(Ord)]`.
    Enum(u8, u8),
    /// An optional value (`none` sorts first, like `Option`).
    Opt(Option<Box<Value>>),
    /// A set of pids, as a bitmask (scalarset size is capped at 8).
    PidSet(u8),
    /// A record: field values in declaration order.
    Record(Vec<Value>),
    /// A pid-indexed array (always length n).
    Array(Vec<Value>),
    /// A multiset (canonically sorted, like [`Multiset`]).
    Multi(Multiset<Value>),
}

impl Value {
    /// Applies a scalarset permutation structurally.
    pub fn permute(&self, perm: &[u8]) -> Value {
        match self {
            Value::Bool(_) | Value::Int(_) | Value::Enum(_, _) => self.clone(),
            Value::Pid(v) => {
                if (*v as usize) < perm.len() {
                    Value::Pid(perm[*v as usize])
                } else {
                    Value::Pid(*v)
                }
            }
            Value::Opt(inner) => Value::Opt(inner.as_ref().map(|b| Box::new(b.permute(perm)))),
            Value::PidSet(bits) => {
                let mut out = 0u8;
                for i in 0..8 {
                    if bits & (1 << i) != 0 {
                        let j = if i < perm.len() { perm[i] as usize } else { i };
                        out |= 1 << j;
                    }
                }
                Value::PidSet(out)
            }
            Value::Record(fields) => {
                Value::Record(fields.iter().map(|f| f.permute(perm)).collect())
            }
            Value::Array(items) => {
                // Pid-indexed: entry i moves to position perm[i]. Arrays are
                // validated to have length n, but guard anyway so a foreign
                // length degrades to element-wise permutation.
                if items.len() == perm.len() {
                    let mut out = items.clone();
                    for (i, item) in items.iter().enumerate() {
                        out[perm[i] as usize] = item.permute(perm);
                    }
                    Value::Array(out)
                } else {
                    Value::Array(items.iter().map(|x| x.permute(perm)).collect())
                }
            }
            Value::Multi(ms) => {
                let mut out = Multiset::with_capacity(ms.len());
                for item in ms.iter() {
                    out.insert(item.permute(perm));
                }
                Value::Multi(out)
            }
        }
    }

    /// `true` if the type of this value contains a `Pid` leaf anywhere.
    /// Used by the equivariance validator (on type shapes, but exercised on
    /// values in tests).
    pub fn contains_pid(&self) -> bool {
        match self {
            Value::Bool(_) | Value::Int(_) | Value::Enum(_, _) => false,
            Value::Pid(_) | Value::PidSet(_) => true,
            Value::Opt(inner) => inner.as_ref().is_some_and(|b| b.contains_pid()),
            Value::Record(fs) => fs.iter().any(|f| f.contains_pid()),
            Value::Array(xs) => xs.iter().any(|x| x.contains_pid()),
            Value::Multi(ms) => ms.iter().any(|x| x.contains_pid()),
        }
    }
}

/// An interpreted protocol state: declared variables, in order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecState {
    /// Variable values, in declaration order (the state's `Ord` order).
    pub vars: Vec<Value>,
}

impl Symmetric for SpecState {
    fn apply_perm(&self, perm: &[u8]) -> Self {
        SpecState {
            vars: self.vars.iter().map(|v| v.permute(perm)).collect(),
        }
    }

    fn signature(&self, n: usize, keys: &mut Vec<u64>) {
        // The equivariance contract guarantees the first variable is the
        // pid-indexed array with pid-free elements; rank keys over it are
        // permutation covariant and dominate the state order (it is also
        // the first `Ord` component).
        match self.vars.first() {
            Some(Value::Array(items)) if items.len() == n => rank_keys(items, keys),
            _ => {
                keys.clear();
                keys.resize(n, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verc3_mck::all_permutations;

    fn sample(n: usize) -> SpecState {
        // caches-like array + a pid-bearing record + a multiset of records.
        let line = |s: u8, g: u8| Value::Record(vec![Value::Enum(0, s), Value::Int(g)]);
        let msg = |k: u8, to: u8, req: u8| {
            Value::Record(vec![Value::Enum(1, k), Value::Pid(to), Value::Pid(req)])
        };
        let mut net = Multiset::new();
        net.insert(msg(2, 0, 1));
        net.insert(msg(0, n as u8, 0));
        SpecState {
            vars: vec![
                Value::Array((0..n).map(|i| line(i as u8 % 3, i as u8)).collect()),
                Value::Record(vec![
                    Value::Enum(2, 1),
                    Value::Opt(Some(Box::new(Value::Pid(1)))),
                    Value::PidSet(0b101),
                ]),
                Value::Multi(net),
                Value::Opt(None),
            ],
        }
    }

    #[test]
    fn identity_perm_is_identity() {
        let n = 3;
        let s = sample(n);
        let id: Vec<u8> = (0..n as u8).collect();
        assert_eq!(s.apply_perm(&id), s);
    }

    #[test]
    fn permutation_is_group_action() {
        let n = 3;
        let s = sample(n);
        for p in all_permutations(n) {
            for q in all_permutations(n) {
                // (s·p)·q == s·(q∘p)
                let compose: Vec<u8> = (0..n).map(|i| q[p[i] as usize]).collect();
                assert_eq!(s.apply_perm(&p).apply_perm(&q), s.apply_perm(&compose));
            }
        }
    }

    #[test]
    fn dir_pid_is_fixed_by_permutation() {
        let n = 3;
        let s = sample(n);
        for p in all_permutations(n) {
            let t = s.apply_perm(&p);
            // The message addressed to DIR (pid n) keeps its destination.
            let (Value::Multi(before), Value::Multi(after)) = (&s.vars[2], &t.vars[2]) else {
                panic!("var 2 is the net")
            };
            let to_dir = |ms: &Multiset<Value>| {
                ms.iter()
                    .filter(|m| matches!(m, Value::Record(f) if f[1] == Value::Pid(n as u8)))
                    .count()
            };
            assert_eq!(to_dir(before), to_dir(after));
        }
    }

    #[test]
    fn signature_is_equivariant_for_pid_free_leading_array() {
        let n = 3;
        let s = sample(n);
        let mut base = Vec::new();
        s.signature(n, &mut base);
        for p in all_permutations(n) {
            let t = s.apply_perm(&p);
            let mut keys = Vec::new();
            t.signature(n, &mut keys);
            // Keys follow their elements: key at new position perm[i] equals
            // the old key at i.
            for i in 0..n {
                assert_eq!(keys[p[i] as usize], base[i]);
            }
        }
    }

    #[test]
    fn canonicalization_is_idempotent_and_orbit_invariant() {
        let n = 3;
        let s = sample(n);
        let canon = s.canonicalize_auto(n);
        assert_eq!(canon.canonicalize_auto(n), canon);
        for p in all_permutations(n) {
            assert_eq!(s.apply_perm(&p).canonicalize_auto(n), canon);
        }
    }
}
