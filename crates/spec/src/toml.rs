//! A small, offline TOML-subset reader.
//!
//! Supports exactly what protocol specs need: `[table]` and `[[array of
//! tables]]` headers with dotted paths, bare and `"quoted"` keys, basic
//! (`"…"` with escapes) and literal (`'…'`) strings, `'''…'''` and
//! `"""…"""` multi-line blocks (the rule-body workhorse; both are read
//! verbatim, without escape processing), integers, booleans, and (possibly
//! multi-line) arrays. Tables preserve key order — declaration order is
//! semantic for variables and rules.
//!
//! Not supported (and not needed): floats, dates, inline tables, dotted
//! keys on the left of `=`, escape sequences inside `"""` blocks.

use crate::error::InvalidSpec;

/// A TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A string (basic, literal, or multi-line literal).
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<TomlValue>),
    /// A nested table (`[a.b]` or sub-keys).
    Table(Table),
    /// An array of tables (`[[a]]`).
    TableArray(Vec<Table>),
}

/// An order-preserving table: key/value pairs in declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// The entries, in source order.
    pub entries: Vec<(String, TomlValue)>,
}

impl Table {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key that must hold a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(TomlValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key that must hold an integer.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(TomlValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// Looks up a key that must hold a boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(TomlValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key that must hold a nested table.
    pub fn get_table(&self, key: &str) -> Option<&Table> {
        match self.get(key) {
            Some(TomlValue::Table(t)) => Some(t),
            _ => None,
        }
    }

    /// Looks up a key that must hold an array of tables; a missing key is
    /// an empty slice.
    pub fn get_table_array(&self, key: &str) -> &[Table] {
        match self.get(key) {
            Some(TomlValue::TableArray(ts)) => ts,
            _ => &[],
        }
    }

    /// Looks up a key that must hold an array of strings.
    pub fn get_str_array(&self, key: &str) -> Option<Vec<&str>> {
        match self.get(key) {
            Some(TomlValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    TomlValue::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

/// Parses a TOML document into its root table.
pub fn parse(src: &str) -> Result<Table, InvalidSpec> {
    let mut p = Parser {
        s: src.as_bytes(),
        pos: 0,
    };
    let mut root = Table::default();
    // Path of the table the next `key = value` lines land in.
    let mut cur_path: Vec<String> = Vec::new();

    loop {
        p.skip_trivia(true);
        if p.at_end() {
            break;
        }
        if p.peek() == b'[' {
            let is_array = p.lookahead(1) == Some(b'[');
            p.pos += if is_array { 2 } else { 1 };
            let path = p.parse_key_path()?;
            p.expect(b']')?;
            if is_array {
                p.expect(b']')?;
            }
            if is_array {
                let table = navigate(&mut root, &path[..path.len() - 1], &mut p)?;
                let last = path.last().expect("non-empty header path").clone();
                match table.entries.iter_mut().find(|(k, _)| *k == last) {
                    Some((_, TomlValue::TableArray(ts))) => ts.push(Table::default()),
                    Some(_) => {
                        return Err(p.err(format!("`{last}` redefined as an array of tables")))
                    }
                    None => table
                        .entries
                        .push((last.clone(), TomlValue::TableArray(vec![Table::default()]))),
                }
            } else {
                // Create the table eagerly so empty sections exist, and
                // reject redefinitions of non-table entries.
                navigate(&mut root, &path, &mut p)?;
            }
            // Key insertion descends into the *last* element of any table
            // array on the path, so the freshly pushed element receives the
            // following keys.
            cur_path = path;
            p.expect_line_end()?;
        } else {
            let key = p.parse_key()?;
            p.skip_trivia(false);
            p.expect(b'=')?;
            p.skip_trivia(false);
            let value = p.parse_value()?;
            p.expect_line_end()?;
            let table = navigate(&mut root, &cur_path, &mut p)?;
            if table.get(&key).is_some() {
                return Err(p.err(format!("duplicate key `{key}`")));
            }
            table.entries.push((key, value));
        }
    }
    Ok(root)
}

/// Walks `path` from the root, creating empty tables as needed and
/// descending into the last element of any table array on the way.
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    p: &mut Parser<'_>,
) -> Result<&'a mut Table, InvalidSpec> {
    let mut cur = root;
    for seg in path {
        let idx = match cur.entries.iter().position(|(k, _)| k == seg) {
            Some(i) => i,
            None => {
                cur.entries
                    .push((seg.clone(), TomlValue::Table(Table::default())));
                cur.entries.len() - 1
            }
        };
        cur = match &mut cur.entries[idx].1 {
            TomlValue::Table(t) => t,
            TomlValue::TableArray(ts) => ts.last_mut().expect("table arrays are never empty"),
            _ => return Err(p.err(format!("`{seg}` is not a table"))),
        };
    }
    Ok(cur)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn peek(&self) -> u8 {
        self.s[self.pos]
    }

    fn lookahead(&self, n: usize) -> Option<u8> {
        self.s.get(self.pos + n).copied()
    }

    fn line(&self) -> usize {
        1 + self.s[..self.pos.min(self.s.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn err(&self, message: String) -> InvalidSpec {
        InvalidSpec::Toml {
            line: self.line(),
            message,
        }
    }

    /// Skips spaces and comments; with `newlines`, also blank lines.
    fn skip_trivia(&mut self, newlines: bool) {
        while !self.at_end() {
            match self.peek() {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' if newlines => self.pos += 1,
                b'#' => {
                    while !self.at_end() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), InvalidSpec> {
        self.skip_trivia(false);
        if !self.at_end() && self.peek() == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found `{}`",
                b as char,
                self.found()
            )))
        }
    }

    fn found(&self) -> String {
        if self.at_end() {
            "end of input".into()
        } else {
            (self.peek() as char).to_string()
        }
    }

    fn expect_line_end(&mut self) -> Result<(), InvalidSpec> {
        self.skip_trivia(false);
        if self.at_end() || self.peek() == b'\n' {
            Ok(())
        } else {
            Err(self.err(format!("unexpected `{}` after value", self.peek() as char)))
        }
    }

    fn parse_key(&mut self) -> Result<String, InvalidSpec> {
        self.skip_trivia(false);
        if self.at_end() {
            return Err(self.err("expected a key".into()));
        }
        match self.peek() {
            b'"' | b'\'' => match self.parse_value()? {
                TomlValue::Str(s) => Ok(s),
                _ => unreachable!("quote chars parse to strings"),
            },
            _ => {
                let start = self.pos;
                while !self.at_end()
                    && (self.peek().is_ascii_alphanumeric()
                        || self.peek() == b'_'
                        || self.peek() == b'-')
                {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err(format!("expected a key, found `{}`", self.found())));
                }
                Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
            }
        }
    }

    fn parse_key_path(&mut self) -> Result<Vec<String>, InvalidSpec> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_trivia(false);
            if !self.at_end() && self.peek() == b'.' {
                self.pos += 1;
                path.push(self.parse_key()?);
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn parse_value(&mut self) -> Result<TomlValue, InvalidSpec> {
        self.skip_trivia(false);
        if self.at_end() {
            return Err(self.err("expected a value".into()));
        }
        match self.peek() {
            b'"' => self.parse_basic_string(),
            b'\'' => self.parse_literal_string(),
            b'[' => self.parse_array(),
            b't' | b'f' => self.parse_bool(),
            b'-' | b'0'..=b'9' => self.parse_int(),
            c => Err(self.err(format!("unexpected `{}` at start of value", c as char))),
        }
    }

    fn parse_basic_string(&mut self) -> Result<TomlValue, InvalidSpec> {
        if self.lookahead(1) == Some(b'"') && self.lookahead(2) == Some(b'"') {
            return self.parse_triple_block(b'"');
        }
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            if self.at_end() || self.peek() == b'\n' {
                return Err(self.err("unterminated string".into()));
            }
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    return Ok(TomlValue::Str(out));
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = if self.at_end() { b'?' } else { self.peek() };
                    self.pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'"' => '"',
                        b'\\' => '\\',
                        c => return Err(self.err(format!("unknown escape `\\{}`", c as char))),
                    });
                }
                c => {
                    // Multi-byte UTF-8 passes through byte by byte.
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    /// A `'''…'''` or `"""…"""` block, read verbatim (no escape
    /// processing), with a single leading newline trimmed per TOML.
    fn parse_triple_block(&mut self, quote: u8) -> Result<TomlValue, InvalidSpec> {
        self.pos += 3;
        if !self.at_end() && self.peek() == b'\n' {
            self.pos += 1;
        }
        let start = self.pos;
        loop {
            if self.at_end() {
                return Err(self.err(format!("unterminated {0}{0}{0} block", quote as char)));
            }
            if self.peek() == quote
                && self.lookahead(1) == Some(quote)
                && self.lookahead(2) == Some(quote)
            {
                let body = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                self.pos += 3;
                return Ok(TomlValue::Str(body));
            }
            self.pos += 1;
        }
    }

    fn parse_literal_string(&mut self) -> Result<TomlValue, InvalidSpec> {
        if self.lookahead(1) == Some(b'\'') && self.lookahead(2) == Some(b'\'') {
            return self.parse_triple_block(b'\'');
        }
        self.pos += 1;
        let start = self.pos;
        while !self.at_end() && self.peek() != b'\'' && self.peek() != b'\n' {
            self.pos += 1;
        }
        if self.at_end() || self.peek() != b'\'' {
            return Err(self.err("unterminated string".into()));
        }
        let body = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(TomlValue::Str(body))
    }

    fn parse_array(&mut self) -> Result<TomlValue, InvalidSpec> {
        self.pos += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_trivia(true);
            if self.at_end() {
                return Err(self.err("unterminated array".into()));
            }
            if self.peek() == b']' {
                self.pos += 1;
                return Ok(TomlValue::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia(true);
            if !self.at_end() && self.peek() == b',' {
                self.pos += 1;
            } else if !self.at_end() && self.peek() == b']' {
                continue;
            } else {
                return Err(self.err(format!("expected `,` or `]`, found `{}`", self.found())));
            }
        }
    }

    fn parse_bool(&mut self) -> Result<TomlValue, InvalidSpec> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.s[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(TomlValue::Bool(value));
            }
        }
        Err(self.err("expected `true` or `false`".into()))
    }

    fn parse_int(&mut self) -> Result<TomlValue, InvalidSpec> {
        let start = self.pos;
        if self.peek() == b'-' {
            self.pos += 1;
        }
        while !self.at_end() && (self.peek().is_ascii_digit() || self.peek() == b'_') {
            self.pos += 1;
        }
        let text: String = self.s[start..self.pos]
            .iter()
            .map(|&b| b as char)
            .filter(|&c| c != '_')
            .collect();
        text.parse::<i64>()
            .map(TomlValue::Int)
            .map_err(|e| self.err(format!("bad integer `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_blocks() {
        let doc = r#"
# comment
[protocol]
name = "MSI"
pids = 3
symmetry = true

[enums]
CacheState = ["I", "S", "M"]

[[rule]]
name = "read[{c}]"
body = '''
require a == 1;
'''

[[rule]]
name = "write"
body = 'x = 1;'

[golden.assignment]
"cache/SM_AD+Inv/resp" = "send_ack"
"#;
        let root = parse(doc).expect("parses");
        let proto = root.get_table("protocol").unwrap();
        assert_eq!(proto.get_str("name"), Some("MSI"));
        assert_eq!(proto.get_int("pids"), Some(3));
        assert_eq!(proto.get_bool("symmetry"), Some(true));
        let enums = root.get_table("enums").unwrap();
        assert_eq!(enums.get_str_array("CacheState"), Some(vec!["I", "S", "M"]));
        let rules = root.get_table_array("rule");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get_str("name"), Some("read[{c}]"));
        assert_eq!(rules[0].get_str("body"), Some("require a == 1;\n"));
        assert_eq!(rules[1].get_str("body"), Some("x = 1;"));
        let golden = root.get_table("golden").unwrap();
        let assignment = golden.get_table("assignment").unwrap();
        assert_eq!(assignment.get_str("cache/SM_AD+Inv/resp"), Some("send_ack"));
    }

    #[test]
    fn nested_table_arrays_attach_to_last_element() {
        let doc = r#"
[[ruleset]]
binds = ["c: pid"]
[[ruleset.rule]]
name = "a"
[[ruleset.rule]]
name = "b"
[[ruleset]]
binds = []
[[ruleset.rule]]
name = "c"
"#;
        let root = parse(doc).expect("parses");
        let sets = root.get_table_array("ruleset");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].get_table_array("rule").len(), 2);
        assert_eq!(sets[1].get_table_array("rule").len(), 1);
        assert_eq!(
            sets[1].get_table_array("rule")[0].get_str("name"),
            Some("c")
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "a = 1\nb = @\n";
        match parse(doc) {
            Err(InvalidSpec::Toml { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a TOML error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let doc = "a = 1\na = 2\n";
        assert!(matches!(parse(doc), Err(InvalidSpec::Toml { .. })));
    }
}
