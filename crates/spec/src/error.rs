//! Structured load-time errors.
//!
//! Everything that can go wrong while reading a spec — malformed TOML, a
//! syntax error in an expression, an unknown variable, a duplicate hole, a
//! non-equivariant symmetry annotation — is reported as an [`InvalidSpec`]
//! value. Loading never panics: panics are reserved for *runtime* type
//! confusion inside a candidate evaluation, which the checker's
//! panic-isolation layer already quarantines.

use std::fmt;

/// A validation error produced while loading a protocol spec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidSpec {
    /// The TOML document itself is malformed.
    Toml {
        /// 1-based source line of the offence.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An embedded expression or statement block failed to parse.
    Syntax {
        /// Which block (rule/fn/property name) was being parsed.
        context: String,
        /// What went wrong.
        message: String,
    },
    /// A name (variable, field, variant, type, hole, lib, fn…) is not
    /// declared.
    UnknownName {
        /// Which block referenced the name.
        context: String,
        /// The undeclared name.
        name: String,
    },
    /// A name is declared twice where uniqueness is required.
    DuplicateName {
        /// Which section contains the duplicate.
        context: String,
        /// The duplicated name.
        name: String,
    },
    /// The `symmetry = true` annotation is not justified by the state
    /// layout (see the crate-level equivariance contract).
    NonEquivariant {
        /// Why the layout cannot be canonicalized soundly.
        reason: String,
    },
    /// An expression or statement is ill-typed.
    Type {
        /// Which block was being compiled.
        context: String,
        /// What went wrong.
        message: String,
    },
    /// A section or key is missing, has the wrong TOML shape, or holds an
    /// out-of-range value.
    Schema {
        /// Which section/key is at fault.
        context: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for InvalidSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidSpec::Toml { line, message } => {
                write!(f, "TOML error at line {line}: {message}")
            }
            InvalidSpec::Syntax { context, message } => {
                write!(f, "syntax error in {context}: {message}")
            }
            InvalidSpec::UnknownName { context, name } => {
                write!(f, "unknown name `{name}` in {context}")
            }
            InvalidSpec::DuplicateName { context, name } => {
                write!(f, "duplicate name `{name}` in {context}")
            }
            InvalidSpec::NonEquivariant { reason } => {
                write!(f, "symmetry annotation is not equivariant: {reason}")
            }
            InvalidSpec::Type { context, message } => {
                write!(f, "type error in {context}: {message}")
            }
            InvalidSpec::Schema { context, message } => {
                write!(f, "schema error in {context}: {message}")
            }
        }
    }
}

impl std::error::Error for InvalidSpec {}
