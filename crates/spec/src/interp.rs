//! Compiler and interpreter: raw declarations → slot-addressed IR →
//! [`SpecModel`], a [`TransitionSystem`] over [`SpecState`].
//!
//! # Compilation
//!
//! [`compile`] resolves every name statically — variables and locals to
//! slots, record fields to indices, enum variants and library actions to
//! constants, holes to registry positions — and reports unresolvable or
//! ill-typed constructs as structured [`InvalidSpec`] errors. After a spec
//! loads successfully, the interpreter can only fail on genuine runtime
//! type confusion (e.g. `get(none)`), which panics; the checker's
//! panic-isolation quarantines such candidates instead of crashing the run.
//!
//! # Execution semantics
//!
//! A rule body executes against a copy-on-write next state: reads go to the
//! pending next state once one exists, otherwise to the current state; the
//! first mutation clones. A body that completes without mutating yields a
//! self-loop (`Next(current)`), matching hand-written terminal rules.
//!
//! `require` with a false operand disables the rule. `choose` consults its
//! hole; a wildcard sets a *blocked* flag but execution continues through
//! any immediately following `choose` statements — so every hole the rule
//! consults is discovered/recorded, exactly like hand-written models that
//! resolve all holes before aborting — and the rule aborts with
//! [`RuleOutcome::Blocked`] at the first non-`choose` statement (or at the
//! end of the body).

use std::sync::Arc;

use verc3_mck::eval::{Choice, HoleResolver, HoleSpec};
use verc3_mck::scalarset::Symmetric;
use verc3_mck::{Multiset, Property, Rule, RuleOutcome, TransitionSystem};

use crate::ast::{BinOp, Expr, LValue, PathSeg, Stmt, UnOp};
use crate::error::InvalidSpec;
use crate::spec::{Binder, BinderDomain, FnBody, PropKind, RawRule, RawSpec, TypeRef};
use crate::value::{SpecState, Value};

// ---- Compiled form ---------------------------------------------------------

/// A synthesis hole with its prebuilt [`HoleSpec`].
pub(crate) struct CHole {
    pub name: String,
    pub spec: HoleSpec,
}

/// A compiled statement body with its local-slot count.
pub(crate) struct CBody {
    pub nlocals: usize,
    pub stmts: Vec<CStmt>,
}

/// One expanded rule instance: an interpolated name, a shared body, and the
/// binder values to preload into the body's first local slots.
pub(crate) struct CRuleInstance {
    pub name: String,
    pub body: usize,
    pub prelude: Vec<(usize, Value)>,
}

/// A compiled property predicate.
pub(crate) struct CProp {
    pub kind: PropKind,
    pub name: String,
    pub nlocals: usize,
    pub expr: CExpr,
}

/// The fully compiled protocol: everything [`SpecModel`] needs at runtime.
pub(crate) struct CompiledSpec {
    pub name: String,
    pub pids: usize,
    pub symmetry: bool,
    pub holes: Vec<CHole>,
    pub initial: SpecState,
    pub bodies: Vec<CBody>,
    pub rules: Vec<CRuleInstance>,
    pub props: Vec<CProp>,
}

/// Quantifier flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Quant {
    Count,
    Forall,
    Exists,
}

/// Typed, slot-addressed expressions.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Bool(bool),
    Int(u8),
    Pid(u8),
    EnumLit(u8, u8),
    NoneLit,
    Global(usize),
    Local(usize),
    Field(Box<CExpr>, usize),
    IndexArr(Box<CExpr>, Box<CExpr>),
    EnumCast(u8, u8, Box<CExpr>),
    Unary(UnOp, Box<CExpr>),
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    InList(Box<CExpr>, Vec<CExpr>),
    Record(Vec<CExpr>),
    Some_(Box<CExpr>),
    IsSome(Box<CExpr>),
    IsNone(Box<CExpr>),
    Get(Box<CExpr>),
    Len(Box<CExpr>),
    Card(Box<CExpr>),
    Contains(Box<CExpr>, Box<CExpr>),
    With(Box<CExpr>, Box<CExpr>),
    Without(Box<CExpr>, Box<CExpr>),
    EmptyPidSet,
    SatSub(Box<CExpr>, Box<CExpr>),
    Find {
        ms: Box<CExpr>,
        to: Box<CExpr>,
        kind: Box<CExpr>,
        rank: Box<CExpr>,
        to_field: usize,
        kind_field: usize,
    },
    Quantifier {
        quant: Quant,
        slot: usize,
        body: Box<CExpr>,
    },
}

/// The root of an assignable place.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CPlaceBase {
    Global(usize),
    Local(usize),
}

/// One step of a compiled place path.
#[derive(Debug, Clone)]
pub(crate) enum CPath {
    Field(usize),
    Index(CExpr),
}

/// A compiled assignable place.
#[derive(Debug, Clone)]
pub(crate) struct CPlace {
    pub base: CPlaceBase,
    pub path: Vec<CPath>,
}

/// Compiled statements.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Require(CExpr),
    SetLocal(usize, CExpr),
    Choose { local: usize, hole: usize },
    Assign { place: CPlace, value: CExpr },
    Insert { place: CPlace, value: CExpr },
    Remove { place: CPlace, value: CExpr },
    If(Vec<(CExpr, Vec<CStmt>)>, Vec<CStmt>),
    ForPids { local: usize, body: Vec<CStmt> },
}

// ---- Compiler --------------------------------------------------------------

/// Compiles validated raw declarations into executable form.
pub(crate) fn compile(raw: RawSpec) -> Result<CompiledSpec, InvalidSpec> {
    let n = raw.pids;
    let holes: Vec<CHole> = raw
        .holes
        .iter()
        .map(|h| CHole {
            name: h.name.clone(),
            spec: HoleSpec::new(h.name.clone(), raw.libs[h.lib].actions.iter().cloned()),
        })
        .collect();

    let initial = SpecState {
        vars: raw
            .vars
            .iter()
            .map(|(_, t)| default_value(t, &raw, n))
            .collect(),
    };

    let mut bodies = Vec::new();
    let mut rules = Vec::new();
    for rs in &raw.rulesets {
        let binder_frame: Vec<(String, usize, TypeRef)> = rs
            .binds
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name.clone(), i, binder_type(&b.domain)))
            .collect();
        let body_base = bodies.len();
        for rule in &rs.rules {
            bodies.push(compile_rule_body(&raw, &holes, rule, &binder_frame)?);
        }
        for combo in binder_combos(&rs.binds, n) {
            for (ri, rule) in rs.rules.iter().enumerate() {
                let name = interpolate(&rule.name_template, &rs.binds, &combo, &raw);
                let prelude = combo
                    .iter()
                    .enumerate()
                    .map(|(slot, v)| (slot, v.clone()))
                    .collect();
                rules.push(CRuleInstance {
                    name,
                    body: body_base + ri,
                    prelude,
                });
            }
        }
    }

    let mut props = Vec::new();
    for p in &raw.props {
        let mut c = Compiler::new(&raw, &holes, format!("property {}", p.name));
        let (expr, ty) = c.expr(&p.expr)?;
        if !ty.compatible(&TypeRef::Bool) {
            return Err(c.type_err("property expression must be boolean"));
        }
        props.push(CProp {
            kind: p.kind,
            name: p.name.clone(),
            nlocals: c.nlocals,
            expr,
        });
    }

    Ok(CompiledSpec {
        name: raw.name.clone(),
        pids: n,
        symmetry: raw.symmetry,
        holes,
        initial,
        bodies,
        rules,
        props,
    })
}

fn binder_type(d: &BinderDomain) -> TypeRef {
    match d {
        BinderDomain::Pid => TypeRef::Pid,
        BinderDomain::Rank => TypeRef::Int,
        BinderDomain::EnumSubset(e, _) => TypeRef::Enum(*e),
    }
}

/// All binder-value combinations: first binder varies slowest, matching the
/// outermost loop of an equivalent hand-written nest.
fn binder_combos(binds: &[Binder], n: usize) -> Vec<Vec<Value>> {
    let mut out = vec![Vec::new()];
    for b in binds {
        let dom: Vec<Value> = match &b.domain {
            BinderDomain::Pid => (0..n).map(|i| Value::Pid(i as u8)).collect(),
            BinderDomain::Rank => (0..n).map(|i| Value::Int(i as u8)).collect(),
            BinderDomain::EnumSubset(e, vs) => {
                vs.iter().map(|v| Value::Enum(*e as u8, *v)).collect()
            }
        };
        let mut next = Vec::with_capacity(out.len() * dom.len());
        for prefix in &out {
            for v in &dom {
                let mut p = prefix.clone();
                p.push(v.clone());
                next.push(p);
            }
        }
        out = next;
    }
    out
}

fn interpolate(template: &str, binds: &[Binder], combo: &[Value], raw: &RawSpec) -> String {
    let mut name = template.to_string();
    for (b, v) in binds.iter().zip(combo) {
        let rendered = match v {
            Value::Pid(i) | Value::Int(i) => i.to_string(),
            Value::Enum(e, var) => raw.enums[*e as usize].variants[*var as usize].clone(),
            other => format!("{other:?}"),
        };
        name = name.replace(&format!("{{{}}}", b.name), &rendered);
    }
    name
}

fn compile_rule_body(
    raw: &RawSpec,
    holes: &[CHole],
    rule: &RawRule,
    binder_frame: &[(String, usize, TypeRef)],
) -> Result<CBody, InvalidSpec> {
    let mut c = Compiler::new(raw, holes, format!("rule {}", rule.name_template));
    c.nlocals = binder_frame.len();
    c.scopes.push(binder_frame.to_vec());
    let stmts = c.stmts(&rule.body)?;
    Ok(CBody {
        nlocals: c.nlocals,
        stmts,
    })
}

fn default_value(t: &TypeRef, raw: &RawSpec, n: usize) -> Value {
    match t {
        TypeRef::Bool => Value::Bool(false),
        TypeRef::Int => Value::Int(0),
        TypeRef::Pid => Value::Pid(0),
        TypeRef::PidSet => Value::PidSet(0),
        TypeRef::Enum(e) => Value::Enum(*e as u8, 0),
        TypeRef::Option(_) => Value::Opt(None),
        TypeRef::Multiset(_) => Value::Multi(Multiset::new()),
        TypeRef::Array(elem) => Value::Array((0..n).map(|_| default_value(elem, raw, n)).collect()),
        TypeRef::Record(r) => Value::Record(
            raw.records[*r]
                .fields
                .iter()
                .map(|(_, ft)| default_value(ft, raw, n))
                .collect(),
        ),
        TypeRef::Unknown => Value::Opt(None),
    }
}

struct Compiler<'r> {
    raw: &'r RawSpec,
    holes: &'r [CHole],
    scopes: Vec<Vec<(String, usize, TypeRef)>>,
    nlocals: usize,
    fn_stack: Vec<String>,
    ctx: String,
}

impl<'r> Compiler<'r> {
    fn new(raw: &'r RawSpec, holes: &'r [CHole], ctx: String) -> Self {
        Compiler {
            raw,
            holes,
            scopes: Vec::new(),
            nlocals: 0,
            fn_stack: Vec::new(),
            ctx,
        }
    }

    fn type_err(&self, message: impl Into<String>) -> InvalidSpec {
        InvalidSpec::Type {
            context: self.ctx.clone(),
            message: message.into(),
        }
    }

    fn unknown(&self, name: &str) -> InvalidSpec {
        InvalidSpec::UnknownName {
            context: self.ctx.clone(),
            name: name.to_string(),
        }
    }

    fn alloc(&mut self, name: &str, ty: TypeRef) -> usize {
        let slot = self.nlocals;
        self.nlocals += 1;
        self.scopes
            .last_mut()
            .expect("a scope frame is active")
            .push((name.to_string(), slot, ty));
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<(usize, TypeRef)> {
        for frame in self.scopes.iter().rev() {
            for (n, slot, ty) in frame.iter().rev() {
                if n == name {
                    return Some((*slot, ty.clone()));
                }
            }
        }
        None
    }

    fn global_idx(&self, name: &str) -> Option<(usize, TypeRef)> {
        self.raw
            .vars
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i, self.raw.vars[i].1.clone()))
    }

    fn enum_idx(&self, name: &str) -> Option<usize> {
        self.raw.enums.iter().position(|e| e.name == name)
    }

    fn lib_idx(&self, name: &str) -> Option<usize> {
        self.raw.libs.iter().position(|l| l.name == name)
    }

    fn record_idx(&self, name: &str) -> Option<usize> {
        self.raw.records.iter().position(|r| r.name == name)
    }

    fn const_val(&self, name: &str) -> Option<i64> {
        self.raw
            .consts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    // ---- Statements --------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<Vec<CStmt>, InvalidSpec> {
        self.scopes.push(Vec::new());
        let result = body.iter().map(|s| self.stmt(s)).collect();
        self.scopes.pop();
        result
    }

    fn stmt(&mut self, s: &Stmt) -> Result<CStmt, InvalidSpec> {
        match s {
            Stmt::Require(e) => {
                let (ce, ty) = self.expr(e)?;
                if !ty.compatible(&TypeRef::Bool) {
                    return Err(self.type_err("`require` needs a boolean"));
                }
                Ok(CStmt::Require(ce))
            }
            Stmt::Let(name, e) => {
                let (ce, ty) = self.expr(e)?;
                let slot = self.alloc(name, ty);
                Ok(CStmt::SetLocal(slot, ce))
            }
            Stmt::Choose(name, hole_name) => {
                let hole = self
                    .holes
                    .iter()
                    .position(|h| h.name == *hole_name)
                    .ok_or_else(|| self.unknown(hole_name))?;
                let slot = self.alloc(name, TypeRef::Int);
                Ok(CStmt::Choose { local: slot, hole })
            }
            Stmt::Assign(lv, e) => {
                let (ce, vty) = self.expr(e)?;
                let (place, pty) = self.lvalue_place(lv)?;
                let (ce, vty) = coerce(ce, vty, &pty);
                if !vty.compatible(&pty) {
                    return Err(
                        self.type_err(format!("assignment to `{}` has a mismatched type", lv.base))
                    );
                }
                Ok(CStmt::Assign { place, value: ce })
            }
            Stmt::If(arms, else_) => {
                let mut carms = Vec::new();
                for (cond, body) in arms {
                    let (cc, ty) = self.expr(cond)?;
                    if !ty.compatible(&TypeRef::Bool) {
                        return Err(self.type_err("`if` condition must be boolean"));
                    }
                    carms.push((cc, self.stmts(body)?));
                }
                let celse = self.stmts(else_)?;
                Ok(CStmt::If(carms, celse))
            }
            Stmt::ForPids(name, body) => {
                self.scopes.push(Vec::new());
                let slot = self.alloc(name, TypeRef::Pid);
                let cbody = body.iter().map(|s| self.stmt(s)).collect::<Result<_, _>>();
                self.scopes.pop();
                Ok(CStmt::ForPids {
                    local: slot,
                    body: cbody?,
                })
            }
            Stmt::Call(name, args) => self.stmt_call(name, args),
        }
    }

    fn stmt_call(&mut self, name: &str, args: &[Expr]) -> Result<CStmt, InvalidSpec> {
        match name {
            "insert" | "remove" => {
                if args.len() != 2 {
                    return Err(self.type_err(format!("`{name}` takes (multiset, value)")));
                }
                let (place, pty) = self.expr_place(&args[0])?;
                let TypeRef::Multiset(elem) = pty else {
                    return Err(self.type_err(format!("`{name}` needs a multiset place")));
                };
                let (cv, vty) = self.expr(&args[1])?;
                if !vty.compatible(&elem) {
                    return Err(self.type_err(format!("`{name}` element type mismatch")));
                }
                if name == "insert" {
                    Ok(CStmt::Insert { place, value: cv })
                } else {
                    Ok(CStmt::Remove { place, value: cv })
                }
            }
            _ => {
                let decl = self
                    .raw
                    .fns
                    .iter()
                    .find(|f| f.name == name)
                    .ok_or_else(|| self.unknown(name))?;
                if self.fn_stack.iter().any(|f| f == name) {
                    return Err(self.type_err(format!("`{name}` is recursive")));
                }
                let FnBody::Stmts(body) = &decl.body else {
                    return Err(self.type_err(format!(
                        "`{name}` is an expression fn; call it inside an expression"
                    )));
                };
                if args.len() != decl.params.len() {
                    return Err(self.type_err(format!(
                        "`{name}` takes {} argument(s), got {}",
                        decl.params.len(),
                        args.len()
                    )));
                }
                // Inline: evaluate args into fresh slots in the caller's
                // scope, then compile the body against a scope containing
                // only the parameters (plus globals/consts, which are always
                // visible). The slot allocator is shared, so inlined locals
                // never collide.
                let mut out = Vec::new();
                let mut param_frame = Vec::new();
                self.scopes.push(Vec::new());
                for ((pname, pty), arg) in decl.params.iter().zip(args) {
                    let (ca, aty) = self.expr(arg)?;
                    let (ca, aty) = coerce(ca, aty, pty);
                    if !aty.compatible(pty) {
                        return Err(self.type_err(format!(
                            "`{name}` argument `{pname}` has a mismatched type"
                        )));
                    }
                    let slot = self.nlocals;
                    self.nlocals += 1;
                    param_frame.push((pname.clone(), slot, pty.clone()));
                    out.push(CStmt::SetLocal(slot, ca));
                }
                self.scopes.pop();
                let saved = std::mem::replace(&mut self.scopes, vec![param_frame]);
                self.fn_stack.push(name.to_string());
                let compiled = self.stmts(body);
                self.fn_stack.pop();
                self.scopes = saved;
                out.extend(compiled?);
                // An inlined fn is a statement sequence; wrap in an `if true`
                // so it stays a single CStmt.
                Ok(CStmt::If(vec![(CExpr::Bool(true), out)], Vec::new()))
            }
        }
    }

    /// Compiles an lvalue (base + path) into a place.
    fn lvalue_place(&mut self, lv: &LValue) -> Result<(CPlace, TypeRef), InvalidSpec> {
        let (base, mut ty) = if let Some((slot, ty)) = self.lookup_local(&lv.base) {
            (CPlaceBase::Local(slot), ty)
        } else if let Some((slot, ty)) = self.global_idx(&lv.base) {
            (CPlaceBase::Global(slot), ty)
        } else {
            return Err(self.unknown(&lv.base));
        };
        let mut path = Vec::new();
        for seg in &lv.path {
            match seg {
                PathSeg::Field(fname) => {
                    let TypeRef::Record(r) = ty else {
                        return Err(
                            self.type_err(format!("`.{fname}` on a non-record in `{}`", lv.base))
                        );
                    };
                    let idx = self.raw.records[r]
                        .fields
                        .iter()
                        .position(|(n, _)| n == fname)
                        .ok_or_else(|| self.unknown(fname))?;
                    ty = self.raw.records[r].fields[idx].1.clone();
                    path.push(CPath::Field(idx));
                }
                PathSeg::Index(e) => {
                    let TypeRef::Array(elem) = ty else {
                        return Err(self.type_err(format!("`[…]` on a non-array in `{}`", lv.base)));
                    };
                    let (ce, ity) = self.expr(e)?;
                    if !ity.compatible(&TypeRef::Pid) && !ity.compatible(&TypeRef::Int) {
                        return Err(self.type_err("array index must be a pid or int"));
                    }
                    ty = *elem;
                    path.push(CPath::Index(ce));
                }
            }
        }
        Ok((CPlace { base, path }, ty))
    }

    /// Compiles a place given in expression position (for `insert`/`remove`).
    fn expr_place(&mut self, e: &Expr) -> Result<(CPlace, TypeRef), InvalidSpec> {
        let lv = expr_to_lvalue(e).ok_or_else(|| {
            self.type_err("expected an assignable place (variable, field, or index)")
        })?;
        self.lvalue_place(&lv)
    }

    // ---- Expressions -------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(CExpr, TypeRef), InvalidSpec> {
        match e {
            Expr::Int(i) => {
                let v = u8::try_from(*i)
                    .map_err(|_| self.type_err(format!("integer literal {i} out of 0..=255")))?;
                Ok((CExpr::Int(v), TypeRef::Int))
            }
            Expr::Bool(b) => Ok((CExpr::Bool(*b), TypeRef::Bool)),
            Expr::None_ => Ok((CExpr::NoneLit, TypeRef::Option(Box::new(TypeRef::Unknown)))),
            Expr::Dir => Ok((CExpr::Pid(self.raw.pids as u8), TypeRef::Pid)),
            Expr::Var(name) => {
                if let Some((slot, ty)) = self.lookup_local(name) {
                    Ok((CExpr::Local(slot), ty))
                } else if let Some(v) = self.const_val(name) {
                    let v = u8::try_from(v)
                        .map_err(|_| self.type_err(format!("const `{name}` out of 0..=255")))?;
                    Ok((CExpr::Int(v), TypeRef::Int))
                } else if let Some((slot, ty)) = self.global_idx(name) {
                    Ok((CExpr::Global(slot), ty))
                } else {
                    Err(self.unknown(name))
                }
            }
            Expr::Field(base, fname) => {
                if let Expr::Var(tname) = base.as_ref() {
                    if self.lookup_local(tname).is_none() && self.global_idx(tname).is_none() {
                        if let Some(eidx) = self.enum_idx(tname) {
                            let v = self.raw.enums[eidx]
                                .variants
                                .iter()
                                .position(|x| x == fname)
                                .ok_or_else(|| self.unknown(fname))?;
                            return Ok((CExpr::EnumLit(eidx as u8, v as u8), TypeRef::Enum(eidx)));
                        }
                        if let Some(lidx) = self.lib_idx(tname) {
                            let v = self.raw.libs[lidx]
                                .actions
                                .iter()
                                .position(|x| x == fname)
                                .ok_or_else(|| self.unknown(fname))?;
                            return Ok((CExpr::Int(v as u8), TypeRef::Int));
                        }
                    }
                }
                let (cb, bty) = self.expr(base)?;
                let TypeRef::Record(r) = bty else {
                    return Err(self.type_err(format!("`.{fname}` on a non-record value")));
                };
                let idx = self.raw.records[r]
                    .fields
                    .iter()
                    .position(|(n, _)| n == fname)
                    .ok_or_else(|| self.unknown(fname))?;
                let fty = self.raw.records[r].fields[idx].1.clone();
                Ok((CExpr::Field(Box::new(cb), idx), fty))
            }
            Expr::Index(base, idx) => {
                if let Expr::Var(tname) = base.as_ref() {
                    if self.lookup_local(tname).is_none() && self.global_idx(tname).is_none() {
                        if let Some(eidx) = self.enum_idx(tname) {
                            let (ci, ity) = self.expr(idx)?;
                            if !ity.compatible(&TypeRef::Int) {
                                return Err(self.type_err("enum cast index must be an integer"));
                            }
                            let nvars = self.raw.enums[eidx].variants.len() as u8;
                            return Ok((
                                CExpr::EnumCast(eidx as u8, nvars, Box::new(ci)),
                                TypeRef::Enum(eidx),
                            ));
                        }
                    }
                }
                let (cb, bty) = self.expr(base)?;
                let TypeRef::Array(elem) = bty else {
                    return Err(self.type_err("`[…]` on a non-array value"));
                };
                let (ci, ity) = self.expr(idx)?;
                if !ity.compatible(&TypeRef::Pid) && !ity.compatible(&TypeRef::Int) {
                    return Err(self.type_err("array index must be a pid or int"));
                }
                Ok((CExpr::IndexArr(Box::new(cb), Box::new(ci)), *elem))
            }
            Expr::Unary(UnOp::Not, inner) => {
                let (ci, ty) = self.expr(inner)?;
                if !ty.compatible(&TypeRef::Bool) {
                    return Err(self.type_err("`!` needs a boolean"));
                }
                Ok((CExpr::Unary(UnOp::Not, Box::new(ci)), TypeRef::Bool))
            }
            Expr::Binary(op, lhs, rhs) => {
                let (cl, lt) = self.expr(lhs)?;
                let (cr, rt) = self.expr(rhs)?;
                let ty = match op {
                    BinOp::And | BinOp::Or => {
                        if !lt.compatible(&TypeRef::Bool) || !rt.compatible(&TypeRef::Bool) {
                            return Err(self.type_err("logical operator needs booleans"));
                        }
                        TypeRef::Bool
                    }
                    BinOp::Add | BinOp::Sub => {
                        if !lt.compatible(&TypeRef::Int) || !rt.compatible(&TypeRef::Int) {
                            return Err(self.type_err("arithmetic needs integers"));
                        }
                        TypeRef::Int
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if !lt.compatible(&rt) {
                            return Err(self.type_err("`==`/`!=` operands have different types"));
                        }
                        TypeRef::Bool
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let ints = lt.compatible(&TypeRef::Int) && rt.compatible(&TypeRef::Int);
                        let pids = lt.compatible(&TypeRef::Pid) && rt.compatible(&TypeRef::Pid);
                        if !ints && !pids {
                            return Err(self.type_err("ordering needs two integers or two pids"));
                        }
                        TypeRef::Bool
                    }
                };
                Ok((CExpr::Binary(*op, Box::new(cl), Box::new(cr)), ty))
            }
            Expr::InList(scrut, items) => {
                let (cs, st) = self.expr(scrut)?;
                let mut citems = Vec::new();
                for it in items {
                    let (ci, it_ty) = self.expr(it)?;
                    if !it_ty.compatible(&st) {
                        return Err(self.type_err("`in […]` item type mismatch"));
                    }
                    citems.push(ci);
                }
                Ok((CExpr::InList(Box::new(cs), citems), TypeRef::Bool))
            }
            Expr::Call(name, args) => self.expr_call(name, args),
        }
    }

    fn expr_call(&mut self, name: &str, args: &[Expr]) -> Result<(CExpr, TypeRef), InvalidSpec> {
        let arity = |want: usize, c: &Self| -> Result<(), InvalidSpec> {
            if args.len() != want {
                Err(c.type_err(format!("`{name}` takes {want} argument(s)")))
            } else {
                Ok(())
            }
        };
        match name {
            "some" => {
                arity(1, self)?;
                let (ci, ty) = self.expr(&args[0])?;
                Ok((CExpr::Some_(Box::new(ci)), TypeRef::Option(Box::new(ty))))
            }
            "is_some" | "is_none" => {
                arity(1, self)?;
                let (ci, ty) = self.expr(&args[0])?;
                if !matches!(ty, TypeRef::Option(_) | TypeRef::Unknown) {
                    return Err(self.type_err(format!("`{name}` needs an option")));
                }
                let c = if name == "is_some" {
                    CExpr::IsSome(Box::new(ci))
                } else {
                    CExpr::IsNone(Box::new(ci))
                };
                Ok((c, TypeRef::Bool))
            }
            "get" => {
                arity(1, self)?;
                let (ci, ty) = self.expr(&args[0])?;
                let TypeRef::Option(inner) = ty else {
                    return Err(self.type_err("`get` needs an option"));
                };
                Ok((CExpr::Get(Box::new(ci)), *inner))
            }
            "len" => {
                arity(1, self)?;
                let (ci, ty) = self.expr(&args[0])?;
                if !matches!(ty, TypeRef::Multiset(_)) {
                    return Err(self.type_err("`len` needs a multiset"));
                }
                Ok((CExpr::Len(Box::new(ci)), TypeRef::Int))
            }
            "card" => {
                arity(1, self)?;
                let (ci, ty) = self.expr(&args[0])?;
                if !ty.compatible(&TypeRef::PidSet) {
                    return Err(self.type_err("`card` needs a pidset"));
                }
                Ok((CExpr::Card(Box::new(ci)), TypeRef::Int))
            }
            "contains" | "with" | "without" => {
                arity(2, self)?;
                let (cs, sty) = self.expr(&args[0])?;
                let (cp, pty) = self.expr(&args[1])?;
                if !sty.compatible(&TypeRef::PidSet) || !pty.compatible(&TypeRef::Pid) {
                    return Err(self.type_err(format!("`{name}` takes (pidset, pid)")));
                }
                let (c, ty) = match name {
                    "contains" => (CExpr::Contains(Box::new(cs), Box::new(cp)), TypeRef::Bool),
                    "with" => (CExpr::With(Box::new(cs), Box::new(cp)), TypeRef::PidSet),
                    _ => (CExpr::Without(Box::new(cs), Box::new(cp)), TypeRef::PidSet),
                };
                Ok((c, ty))
            }
            "empty_pidset" => {
                arity(0, self)?;
                Ok((CExpr::EmptyPidSet, TypeRef::PidSet))
            }
            "sat_sub" => {
                arity(2, self)?;
                let (ca, at) = self.expr(&args[0])?;
                let (cb, bt) = self.expr(&args[1])?;
                if !at.compatible(&TypeRef::Int) || !bt.compatible(&TypeRef::Int) {
                    return Err(self.type_err("`sat_sub` takes (int, int)"));
                }
                Ok((CExpr::SatSub(Box::new(ca), Box::new(cb)), TypeRef::Int))
            }
            "find" => {
                arity(4, self)?;
                let (cms, mty) = self.expr(&args[0])?;
                let TypeRef::Multiset(elem) = mty else {
                    return Err(self.type_err("`find` needs a multiset"));
                };
                let TypeRef::Record(r) = *elem else {
                    return Err(self.type_err("`find` needs a multiset of records"));
                };
                let field = |fname: &str, c: &Self| -> Result<(usize, TypeRef), InvalidSpec> {
                    c.raw.records[r]
                        .fields
                        .iter()
                        .position(|(n, _)| n == fname)
                        .map(|i| (i, c.raw.records[r].fields[i].1.clone()))
                        .ok_or_else(|| {
                            c.type_err(format!(
                                "`find` needs a `{fname}` field on `{}`",
                                c.raw.records[r].name
                            ))
                        })
                };
                let (to_field, to_ty) = field("to", self)?;
                let (kind_field, kind_ty) = field("kind", self)?;
                let (cto, tty) = self.expr(&args[1])?;
                let (cto, tty) = coerce(cto, tty, &to_ty);
                let (ckind, kty) = self.expr(&args[2])?;
                let (ckind, kty) = coerce(ckind, kty, &kind_ty);
                let (crank, rty) = self.expr(&args[3])?;
                if !tty.compatible(&to_ty) || !kty.compatible(&kind_ty) {
                    return Err(self.type_err("`find` selector type mismatch"));
                }
                if !rty.compatible(&TypeRef::Int) {
                    return Err(self.type_err("`find` rank must be an integer"));
                }
                Ok((
                    CExpr::Find {
                        ms: Box::new(cms),
                        to: Box::new(cto),
                        kind: Box::new(ckind),
                        rank: Box::new(crank),
                        to_field,
                        kind_field,
                    },
                    TypeRef::Option(Box::new(TypeRef::Record(r))),
                ))
            }
            "count" | "forall" | "exists" => {
                arity(2, self)?;
                let Expr::Var(binder) = &args[0] else {
                    return Err(self.type_err(format!(
                        "`{name}` takes a fresh binder name as its first argument"
                    )));
                };
                self.scopes.push(Vec::new());
                let slot = self.alloc(binder, TypeRef::Pid);
                let body = self.expr(&args[1]);
                self.scopes.pop();
                let (cb, bty) = body?;
                if !bty.compatible(&TypeRef::Bool) {
                    return Err(self.type_err(format!("`{name}` body must be boolean")));
                }
                let (quant, ty) = match name {
                    "count" => (Quant::Count, TypeRef::Int),
                    "forall" => (Quant::Forall, TypeRef::Bool),
                    _ => (Quant::Exists, TypeRef::Bool),
                };
                Ok((
                    CExpr::Quantifier {
                        quant,
                        slot,
                        body: Box::new(cb),
                    },
                    ty,
                ))
            }
            _ => {
                if let Some(r) = self.record_idx(name) {
                    let fields = self.raw.records[r].fields.clone();
                    if args.len() != fields.len() {
                        return Err(self.type_err(format!(
                            "`{name}` constructor takes {} field(s)",
                            fields.len()
                        )));
                    }
                    let mut cargs = Vec::new();
                    for ((fname, fty), arg) in fields.iter().zip(args) {
                        let (ca, aty) = self.expr(arg)?;
                        let (ca, aty) = coerce(ca, aty, fty);
                        if !aty.compatible(fty) {
                            return Err(self.type_err(format!(
                                "`{name}` field `{fname}` has a mismatched type"
                            )));
                        }
                        cargs.push(ca);
                    }
                    return Ok((CExpr::Record(cargs), TypeRef::Record(r)));
                }
                // Expression fn: inline by substitution. The substituted body
                // is compiled in the caller's scope, so parameters must not
                // shadow caller locals the arguments mention.
                let decl = self
                    .raw
                    .fns
                    .iter()
                    .find(|f| f.name == name)
                    .ok_or_else(|| self.unknown(name))?
                    .clone();
                if self.fn_stack.iter().any(|f| f == name) {
                    return Err(self.type_err(format!("`{name}` is recursive")));
                }
                let FnBody::Expr(body) = &decl.body else {
                    return Err(self.type_err(format!(
                        "`{name}` is a statement fn; call it as a statement"
                    )));
                };
                if args.len() != decl.params.len() {
                    return Err(self.type_err(format!(
                        "`{name}` takes {} argument(s), got {}",
                        decl.params.len(),
                        args.len()
                    )));
                }
                let map: std::collections::HashMap<&str, &Expr> = decl
                    .params
                    .iter()
                    .map(|(p, _)| p.as_str())
                    .zip(args.iter())
                    .collect();
                let substituted = subst(body, &map);
                self.fn_stack.push(name.to_string());
                let compiled = self.expr(&substituted);
                self.fn_stack.pop();
                compiled
            }
        }
    }
}

/// Coerces a compile-time integer literal to a pid constant when a
/// pid-typed position expects one. Only literals coerce: a runtime `int`
/// is a different [`Value`] variant from a `pid`, and silently mixing them
/// would corrupt state equality.
fn coerce(c: CExpr, have: TypeRef, want: &TypeRef) -> (CExpr, TypeRef) {
    if let (CExpr::Int(v), TypeRef::Int, TypeRef::Pid) = (&c, &have, want) {
        return (CExpr::Pid(*v), TypeRef::Pid);
    }
    (c, have)
}

/// Reconstructs an lvalue from a place given in expression position.
fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Var(n) => Some(LValue {
            base: n.clone(),
            path: Vec::new(),
        }),
        Expr::Field(base, f) => {
            let mut lv = expr_to_lvalue(base)?;
            lv.path.push(PathSeg::Field(f.clone()));
            Some(lv)
        }
        Expr::Index(base, idx) => {
            let mut lv = expr_to_lvalue(base)?;
            lv.path.push(PathSeg::Index((**idx).clone()));
            Some(lv)
        }
        _ => None,
    }
}

/// Substitutes parameter names with argument ASTs (for expression fns).
fn subst(e: &Expr, map: &std::collections::HashMap<&str, &Expr>) -> Expr {
    match e {
        Expr::Var(n) => match map.get(n.as_str()) {
            Some(replacement) => (*replacement).clone(),
            None => e.clone(),
        },
        Expr::Int(_) | Expr::Bool(_) | Expr::None_ | Expr::Dir => e.clone(),
        Expr::Field(b, f) => Expr::Field(Box::new(subst(b, map)), f.clone()),
        Expr::Index(b, i) => Expr::Index(Box::new(subst(b, map)), Box::new(subst(i, map))),
        Expr::Unary(op, i) => Expr::Unary(*op, Box::new(subst(i, map))),
        Expr::Binary(op, l, r) => {
            Expr::Binary(*op, Box::new(subst(l, map)), Box::new(subst(r, map)))
        }
        Expr::InList(s, items) => Expr::InList(
            Box::new(subst(s, map)),
            items.iter().map(|i| subst(i, map)).collect(),
        ),
        Expr::Call(n, args) => Expr::Call(n.clone(), args.iter().map(|a| subst(a, map)).collect()),
    }
}

// ---- Interpreter -----------------------------------------------------------

enum Flow {
    Cont,
    Disabled,
    Blocked,
}

struct Env<'a> {
    spec: &'a CompiledSpec,
    cur: &'a SpecState,
    ns: Option<SpecState>,
    blocked: bool,
}

impl Env<'_> {
    fn state(&self) -> &SpecState {
        self.ns.as_ref().unwrap_or(self.cur)
    }
}

fn as_bool(v: Value) -> bool {
    match v {
        Value::Bool(b) => b,
        other => panic!("spec interpreter: expected bool, got {other:?}"),
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) | Value::Pid(i) => *i as i64,
        other => panic!("spec interpreter: expected a number, got {other:?}"),
    }
}

fn as_index(v: &Value) -> usize {
    match v {
        Value::Int(i) | Value::Pid(i) => *i as usize,
        other => panic!("spec interpreter: expected an index, got {other:?}"),
    }
}

fn int_value(i: i64) -> Value {
    match u8::try_from(i) {
        Ok(v) => Value::Int(v),
        Err(_) => panic!("spec interpreter: integer {i} out of 0..=255"),
    }
}

fn eval(env: &Env, locals: &mut Vec<Value>, e: &CExpr) -> Value {
    match e {
        CExpr::Bool(b) => Value::Bool(*b),
        CExpr::Int(i) => Value::Int(*i),
        CExpr::Pid(p) => Value::Pid(*p),
        CExpr::EnumLit(ty, v) => Value::Enum(*ty, *v),
        CExpr::NoneLit => Value::Opt(None),
        CExpr::Global(slot) => env.state().vars[*slot].clone(),
        CExpr::Local(slot) => locals[*slot].clone(),
        CExpr::Field(base, idx) => match eval(env, locals, base) {
            Value::Record(mut fields) => fields.swap_remove(*idx),
            other => panic!("spec interpreter: `.field` on {other:?}"),
        },
        CExpr::IndexArr(base, idx) => {
            let i = as_index(&eval(env, locals, idx));
            match eval(env, locals, base) {
                Value::Array(mut items) => {
                    assert!(i < items.len(), "spec interpreter: index {i} out of bounds");
                    items.swap_remove(i)
                }
                other => panic!("spec interpreter: `[…]` on {other:?}"),
            }
        }
        CExpr::EnumCast(ty, nvars, inner) => {
            let i = as_i64(&eval(env, locals, inner));
            assert!(
                (0..*nvars as i64).contains(&i),
                "spec interpreter: enum cast {i} out of range"
            );
            Value::Enum(*ty, i as u8)
        }
        CExpr::Unary(UnOp::Not, inner) => Value::Bool(!as_bool(eval(env, locals, inner))),
        CExpr::Binary(op, lhs, rhs) => match op {
            BinOp::And => {
                Value::Bool(as_bool(eval(env, locals, lhs)) && as_bool(eval(env, locals, rhs)))
            }
            BinOp::Or => {
                Value::Bool(as_bool(eval(env, locals, lhs)) || as_bool(eval(env, locals, rhs)))
            }
            BinOp::Eq => Value::Bool(eval(env, locals, lhs) == eval(env, locals, rhs)),
            BinOp::Ne => Value::Bool(eval(env, locals, lhs) != eval(env, locals, rhs)),
            BinOp::Add => {
                int_value(as_i64(&eval(env, locals, lhs)) + as_i64(&eval(env, locals, rhs)))
            }
            BinOp::Sub => {
                int_value(as_i64(&eval(env, locals, lhs)) - as_i64(&eval(env, locals, rhs)))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = as_i64(&eval(env, locals, lhs));
                let r = as_i64(&eval(env, locals, rhs));
                Value::Bool(match op {
                    BinOp::Lt => l < r,
                    BinOp::Le => l <= r,
                    BinOp::Gt => l > r,
                    _ => l >= r,
                })
            }
        },
        CExpr::InList(scrut, items) => {
            let v = eval(env, locals, scrut);
            Value::Bool(items.iter().any(|i| eval(env, locals, i) == v))
        }
        CExpr::Record(fields) => {
            Value::Record(fields.iter().map(|f| eval(env, locals, f)).collect())
        }
        CExpr::Some_(inner) => Value::Opt(Some(Box::new(eval(env, locals, inner)))),
        CExpr::IsSome(inner) => match eval(env, locals, inner) {
            Value::Opt(o) => Value::Bool(o.is_some()),
            other => panic!("spec interpreter: `is_some` on {other:?}"),
        },
        CExpr::IsNone(inner) => match eval(env, locals, inner) {
            Value::Opt(o) => Value::Bool(o.is_none()),
            other => panic!("spec interpreter: `is_none` on {other:?}"),
        },
        CExpr::Get(inner) => match eval(env, locals, inner) {
            Value::Opt(Some(b)) => *b,
            Value::Opt(None) => panic!("spec interpreter: `get` on `none`"),
            other => panic!("spec interpreter: `get` on {other:?}"),
        },
        CExpr::Len(inner) => match eval(env, locals, inner) {
            Value::Multi(ms) => int_value(ms.len() as i64),
            other => panic!("spec interpreter: `len` on {other:?}"),
        },
        CExpr::Card(inner) => match eval(env, locals, inner) {
            Value::PidSet(bits) => Value::Int(bits.count_ones() as u8),
            other => panic!("spec interpreter: `card` on {other:?}"),
        },
        CExpr::Contains(set, pid) => {
            let p = as_index(&eval(env, locals, pid));
            match eval(env, locals, set) {
                Value::PidSet(bits) => Value::Bool(bits & (1 << p) != 0),
                other => panic!("spec interpreter: `contains` on {other:?}"),
            }
        }
        CExpr::With(set, pid) => {
            let p = as_index(&eval(env, locals, pid));
            match eval(env, locals, set) {
                Value::PidSet(bits) => Value::PidSet(bits | (1 << p)),
                other => panic!("spec interpreter: `with` on {other:?}"),
            }
        }
        CExpr::Without(set, pid) => {
            let p = as_index(&eval(env, locals, pid));
            match eval(env, locals, set) {
                Value::PidSet(bits) => Value::PidSet(bits & !(1 << p)),
                other => panic!("spec interpreter: `without` on {other:?}"),
            }
        }
        CExpr::EmptyPidSet => Value::PidSet(0),
        CExpr::SatSub(a, b) => {
            let a = as_i64(&eval(env, locals, a));
            let b = as_i64(&eval(env, locals, b));
            int_value((a - b).max(0))
        }
        CExpr::Find {
            ms,
            to,
            kind,
            rank,
            to_field,
            kind_field,
        } => {
            let to = eval(env, locals, to);
            let kind = eval(env, locals, kind);
            let rank = as_index(&eval(env, locals, rank));
            match eval(env, locals, ms) {
                Value::Multi(items) => {
                    let found = items
                        .iter()
                        .filter(|m| match m {
                            Value::Record(fs) => fs[*to_field] == to && fs[*kind_field] == kind,
                            other => panic!("spec interpreter: `find` over {other:?}"),
                        })
                        .nth(rank)
                        .cloned();
                    Value::Opt(found.map(Box::new))
                }
                other => panic!("spec interpreter: `find` on {other:?}"),
            }
        }
        CExpr::Quantifier { quant, slot, body } => {
            let mut count = 0usize;
            for i in 0..env.spec.pids {
                locals[*slot] = Value::Pid(i as u8);
                if as_bool(eval(env, locals, body)) {
                    count += 1;
                }
            }
            match quant {
                Quant::Count => int_value(count as i64),
                Quant::Forall => Value::Bool(count == env.spec.pids),
                Quant::Exists => Value::Bool(count > 0),
            }
        }
    }
}

enum RSeg {
    Field(usize),
    Index(usize),
}

fn resolve_segs(env: &Env, locals: &mut Vec<Value>, path: &[CPath]) -> Vec<RSeg> {
    path.iter()
        .map(|p| match p {
            CPath::Field(i) => RSeg::Field(*i),
            CPath::Index(e) => RSeg::Index(as_index(&eval(env, locals, e))),
        })
        .collect()
}

fn place_mut<'a>(
    env: &'a mut Env,
    locals: &'a mut [Value],
    base: CPlaceBase,
    segs: &[RSeg],
) -> &'a mut Value {
    let mut v: &mut Value = match base {
        CPlaceBase::Global(slot) => {
            if env.ns.is_none() {
                env.ns = Some(env.cur.clone());
            }
            &mut env.ns.as_mut().expect("just materialized").vars[slot]
        }
        CPlaceBase::Local(slot) => &mut locals[slot],
    };
    for seg in segs {
        v = match (v, seg) {
            (Value::Record(fields), RSeg::Field(i)) => &mut fields[*i],
            (Value::Array(items), RSeg::Index(i)) => &mut items[*i],
            (other, _) => panic!("spec interpreter: cannot descend into {other:?}"),
        };
    }
    v
}

fn exec(
    env: &mut Env,
    locals: &mut Vec<Value>,
    stmts: &[CStmt],
    ctx: &mut dyn HoleResolver,
) -> Flow {
    for st in stmts {
        if env.blocked && !matches!(st, CStmt::Choose { .. }) {
            return Flow::Blocked;
        }
        match st {
            CStmt::Require(e) => {
                if !as_bool(eval(env, locals, e)) {
                    return Flow::Disabled;
                }
            }
            CStmt::SetLocal(slot, e) => {
                let v = eval(env, locals, e);
                locals[*slot] = v;
            }
            CStmt::Choose { local, hole } => match ctx.choose(&env.spec.holes[*hole].spec) {
                Choice::Action(i) => locals[*local] = Value::Int(i as u8),
                Choice::Wildcard => {
                    env.blocked = true;
                    locals[*local] = Value::Int(0);
                }
            },
            CStmt::Assign { place, value } => {
                let v = eval(env, locals, value);
                let segs = resolve_segs(env, locals, &place.path);
                *place_mut(env, locals, place.base, &segs) = v;
            }
            CStmt::Insert { place, value } => {
                let v = eval(env, locals, value);
                let segs = resolve_segs(env, locals, &place.path);
                match place_mut(env, locals, place.base, &segs) {
                    Value::Multi(ms) => ms.insert(v),
                    other => panic!("spec interpreter: `insert` into {other:?}"),
                }
            }
            CStmt::Remove { place, value } => {
                let v = eval(env, locals, value);
                let segs = resolve_segs(env, locals, &place.path);
                match place_mut(env, locals, place.base, &segs) {
                    Value::Multi(ms) => {
                        ms.remove(&v);
                    }
                    other => panic!("spec interpreter: `remove` from {other:?}"),
                }
            }
            CStmt::If(arms, else_) => {
                let mut taken = false;
                for (cond, body) in arms {
                    if as_bool(eval(env, locals, cond)) {
                        match exec(env, locals, body, ctx) {
                            Flow::Cont => {}
                            f => return f,
                        }
                        taken = true;
                        break;
                    }
                }
                if !taken {
                    match exec(env, locals, else_, ctx) {
                        Flow::Cont => {}
                        f => return f,
                    }
                }
            }
            CStmt::ForPids { local, body } => {
                for i in 0..env.spec.pids {
                    locals[*local] = Value::Pid(i as u8);
                    match exec(env, locals, body, ctx) {
                        Flow::Cont => {}
                        f => return f,
                    }
                }
            }
        }
    }
    Flow::Cont
}

pub(crate) fn exec_rule(
    spec: &CompiledSpec,
    rule: usize,
    cur: &SpecState,
    ctx: &mut dyn HoleResolver,
) -> RuleOutcome<SpecState> {
    let inst = &spec.rules[rule];
    let body = &spec.bodies[inst.body];
    let mut env = Env {
        spec,
        cur,
        ns: None,
        blocked: false,
    };
    let mut locals = vec![Value::Bool(false); body.nlocals];
    for (slot, v) in &inst.prelude {
        locals[*slot] = v.clone();
    }
    match exec(&mut env, &mut locals, &body.stmts, ctx) {
        Flow::Disabled => RuleOutcome::Disabled,
        Flow::Blocked => RuleOutcome::Blocked,
        Flow::Cont => {
            if env.blocked {
                RuleOutcome::Blocked
            } else {
                RuleOutcome::Next(env.ns.take().unwrap_or_else(|| cur.clone()))
            }
        }
    }
}

pub(crate) fn eval_prop(spec: &CompiledSpec, prop: usize, state: &SpecState) -> bool {
    let p = &spec.props[prop];
    let env = Env {
        spec,
        cur: state,
        ns: None,
        blocked: false,
    };
    let mut locals = vec![Value::Bool(false); p.nlocals];
    as_bool(eval(&env, &mut locals, &p.expr))
}

// ---- The model -------------------------------------------------------------

/// A [`TransitionSystem`] interpreting a compiled spec.
///
/// Rule table order, hole consultation order, property order, and (when
/// `symmetry = true`) canonical representatives all follow the document, so
/// a spec that mirrors a hand-written model reproduces its run bit for bit.
pub struct SpecModel {
    spec: Arc<CompiledSpec>,
    rules: Vec<Rule<SpecState>>,
    props: Vec<Property<SpecState>>,
}

impl SpecModel {
    pub(crate) fn new(spec: Arc<CompiledSpec>) -> Self {
        let rules = spec
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let sp = Arc::clone(&spec);
                Rule::new(
                    r.name.clone(),
                    move |s: &SpecState, ctx: &mut dyn HoleResolver| exec_rule(&sp, i, s, ctx),
                )
            })
            .collect();
        let props = spec
            .props
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let sp = Arc::clone(&spec);
                let name = p.name.clone();
                match p.kind {
                    PropKind::Invariant => {
                        Property::invariant(name, move |s: &SpecState| eval_prop(&sp, i, s))
                    }
                    PropKind::Reachable => {
                        Property::reachable(name, move |s: &SpecState| eval_prop(&sp, i, s))
                    }
                    PropKind::EventuallyQuiescent => {
                        Property::eventually_quiescent(name, move |s: &SpecState| {
                            eval_prop(&sp, i, s)
                        })
                    }
                }
            })
            .collect();
        SpecModel { spec, rules, props }
    }
}

impl std::fmt::Debug for SpecModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecModel")
            .field("name", &self.spec.name)
            .field("rules", &self.rules.len())
            .finish_non_exhaustive()
    }
}

impl TransitionSystem for SpecModel {
    type State = SpecState;

    fn name(&self) -> &str {
        &self.spec.name
    }

    fn initial_states(&self) -> Vec<SpecState> {
        vec![self.spec.initial.clone()]
    }

    fn rules(&self) -> &[Rule<SpecState>] {
        &self.rules
    }

    fn canonicalize(&self, state: SpecState) -> SpecState {
        if self.spec.symmetry {
            // Per-thread spare buffer, exactly like the hand-written models:
            // the expand hot loop canonicalizes without allocating.
            thread_local! {
                static SPARE: std::cell::RefCell<Option<SpecState>> =
                    const { std::cell::RefCell::new(None) };
            }
            SPARE
                .with(|spare| state.canonicalize_auto_with(self.spec.pids, &mut spare.borrow_mut()))
        } else {
            state
        }
    }

    fn properties(&self) -> &[Property<SpecState>] {
        &self.props
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;
    use verc3_mck::FixedResolver;

    const COUNTER: &str = r#"
[protocol]
name = "counter"
pids = 2
symmetry = false

[consts]
CAP = 4

[vars]
count = "int"
winner = "option<pid>"

[libs]
step = ["one", "two"]

[[hole]]
name = "inc"
lib = "step"

[[rule]]
name = "bump"
body = """
require count < CAP;
choose a = hole("inc");
if a == step.one { count = count + 1; }
else { count = count + 2; }
"""

[[rule]]
name = "claim"
body = """
require count >= CAP && is_none(winner);
winner = some(DIR);
"""

[[rule]]
name = "idle"
body = "require count == 0;"

[[property]]
kind = "invariant"
name = "bounded"
expr = "count <= CAP + 1"

[[property]]
kind = "reachable"
name = "someone wins"
expr = "is_some(winner)"
"#;

    fn rule_outcome(
        model: &SpecModel,
        name: &str,
        s: &SpecState,
        ctx: &mut dyn HoleResolver,
    ) -> RuleOutcome<SpecState> {
        let rule = model
            .rules()
            .iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("rule {name} exists"));
        rule.apply(s, ctx)
    }

    #[test]
    fn counter_spec_executes() {
        let spec = ProtocolSpec::from_toml_str(COUNTER).expect("loads");
        let model = spec.model();
        let init = model.initial_states().remove(0);
        assert_eq!(init.vars, vec![Value::Int(0), Value::Opt(None)]);

        // Unassigned hole → Blocked; `idle` fires as a self-loop.
        let mut unassigned = FixedResolver::new();
        assert_eq!(
            rule_outcome(&model, "bump", &init, &mut unassigned),
            RuleOutcome::Blocked
        );
        assert_eq!(
            rule_outcome(&model, "idle", &init, &mut unassigned),
            RuleOutcome::Next(init.clone())
        );

        // Assigned hole → steps by two.
        let mut two = FixedResolver::new();
        two.assign("inc", 1);
        let RuleOutcome::Next(next) = rule_outcome(&model, "bump", &init, &mut two) else {
            panic!("bump fires");
        };
        assert_eq!(next.vars[0], Value::Int(2));
        // `claim` is disabled until the counter saturates.
        assert_eq!(
            rule_outcome(&model, "claim", &next, &mut two),
            RuleOutcome::Disabled
        );
        let RuleOutcome::Next(n2) = rule_outcome(&model, "bump", &next, &mut two) else {
            panic!("bump fires");
        };
        let RuleOutcome::Next(n3) = rule_outcome(&model, "claim", &n2, &mut two) else {
            panic!("claim fires");
        };
        assert_eq!(n3.vars[1], Value::Opt(Some(Box::new(Value::Pid(2)))));

        // Properties evaluate.
        let props = model.properties();
        assert_eq!(props.len(), 2);
        assert_eq!(props[0].name(), "bounded");
    }

    #[test]
    fn rejects_unknown_names_and_types() {
        let bad_var = COUNTER.replace("count = count + 1;", "missing = 1;");
        assert!(matches!(
            ProtocolSpec::from_toml_str(&bad_var),
            Err(InvalidSpec::UnknownName { name, .. }) if name == "missing"
        ));

        let bad_hole = COUNTER.replace("hole(\"inc\")", "hole(\"nope\")");
        assert!(matches!(
            ProtocolSpec::from_toml_str(&bad_hole),
            Err(InvalidSpec::UnknownName { name, .. }) if name == "nope"
        ));

        let bad_type = COUNTER.replace("require count == 0;", "require count == true;");
        assert!(matches!(
            ProtocolSpec::from_toml_str(&bad_type),
            Err(InvalidSpec::Type { .. })
        ));
    }

    #[test]
    fn ruleset_expansion_is_binder_outer_rule_inner() {
        let src = r#"
[protocol]
name = "expansion"
pids = 2
symmetry = false

[enums]
Kind = ["A", "B"]

[vars]
x = "int"

[[ruleset]]
binds = ["c: pid", "k: Kind in [B, A]"]

[[ruleset.rule]]
name = "r[{c}]:{k}"
body = "require x == 0;"

[[property]]
kind = "invariant"
name = "trivial"
expr = "true"
"#;
        let spec = ProtocolSpec::from_toml_str(src).expect("loads");
        let names: Vec<String> = spec
            .model()
            .rules()
            .iter()
            .map(|r| r.name().to_string())
            .collect();
        assert_eq!(names, vec!["r[0]:B", "r[0]:A", "r[1]:B", "r[1]:A"]);
    }

    #[test]
    fn fn_inlining_and_quantifiers_work() {
        let src = r#"
[protocol]
name = "fns"
pids = 3
symmetry = false

[records.Cell]
fields = ["v: int"]

[vars]
cells = "array[pid] of Cell"
total = "int"

[[fn]]
name = "put"
params = ["p: pid", "x: int"]
body = "cells[p].v = x; total = total + x;"

[[fn]]
name = "loaded"
params = ["p: pid"]
expr = "cells[p].v > 0"

[[rule]]
name = "fill"
body = """
require !loaded(0 + 0 == 0 && false || cells[0].v == 0 && true);
"""

[[rule]]
name = "seed"
body = """
require cells[0].v == 0;
put(0, 2);
put(1, 3);
"""

[[property]]
kind = "invariant"
name = "sum matches"
expr = "total == count(p, loaded(p)) + count(q, cells[q].v > 1) + sat_sub(total, 5)"
"#;
        // `loaded` takes a pid; the first rule feeds it a bool to prove the
        // type error surfaces through substitution.
        assert!(matches!(
            ProtocolSpec::from_toml_str(src),
            Err(InvalidSpec::Type { .. })
        ));

        let src = src.replace(
            "require !loaded(0 + 0 == 0 && false || cells[0].v == 0 && true);",
            "require !loaded(DIR);",
        );
        // DIR is a pid, but indexes out of bounds only if evaluated — and
        // compile must accept it. Runtime would panic; we never fire it.
        let spec = ProtocolSpec::from_toml_str(&src).expect("loads");
        let model = spec.model();
        let init = model.initial_states().remove(0);
        let seed = model
            .rules()
            .iter()
            .find(|r| r.name() == "seed")
            .expect("seed exists");
        let RuleOutcome::Next(next) = seed.apply(&init, &mut verc3_mck::NoHoles) else {
            panic!("seed fires");
        };
        assert_eq!(
            next.vars[0],
            Value::Array(vec![
                Value::Record(vec![Value::Int(2)]),
                Value::Record(vec![Value::Int(3)]),
                Value::Record(vec![Value::Int(0)]),
            ])
        );
        assert_eq!(next.vars[1], Value::Int(5));
        // total(5) == loaded-count(2) + >1-count(2) + sat_sub(5,5)=0 → false;
        // on the initial state 0 == 0 + 0 + 0 → true.
        assert!(eval_prop(&spec.compiled, 0, &init));
        assert!(!eval_prop(&spec.compiled, 0, &next));
    }

    #[test]
    fn multiset_find_insert_remove_roundtrip() {
        let src = r#"
[protocol]
name = "netty"
pids = 2
symmetry = false

[enums]
Kind = ["Ping", "Pong"]

[records.Msg]
fields = ["kind: Kind", "to: pid", "req: pid"]

[vars]
net = "multiset<Msg>"
done = "bool"

[[rule]]
name = "send"
body = """
require len(net) == 0;
insert(net, Msg(Kind.Ping, 1, 0));
insert(net, Msg(Kind.Ping, 1, 1));
"""

[[rule]]
name = "recv"
body = """
let mo = find(net, 1, Kind.Ping, 1);
require is_some(mo);
let m = get(mo);
remove(net, m);
done = true;
"""

[[property]]
kind = "invariant"
name = "cap"
expr = "len(net) <= 2"
"#;
        let spec = ProtocolSpec::from_toml_str(src).expect("loads");
        let model = spec.model();
        let init = model.initial_states().remove(0);
        let apply = |name: &str, s: &SpecState| {
            model
                .rules()
                .iter()
                .find(|r| r.name() == name)
                .expect("rule exists")
                .apply(s, &mut verc3_mck::NoHoles)
        };
        assert_eq!(apply("recv", &init), RuleOutcome::Disabled);
        let RuleOutcome::Next(sent) = apply("send", &init) else {
            panic!("send fires");
        };
        let Value::Multi(net) = &sent.vars[0] else {
            panic!("net is a multiset");
        };
        assert_eq!(net.len(), 2);
        // rank 1 selects the second matching message in canonical order
        // (req = 1, since Msg sorts by kind, to, req).
        let RuleOutcome::Next(recvd) = apply("recv", &sent) else {
            panic!("recv fires");
        };
        let Value::Multi(net) = &recvd.vars[0] else {
            panic!("net is a multiset");
        };
        assert_eq!(net.len(), 1);
        assert_eq!(
            net.iter().next(),
            Some(&Value::Record(vec![
                Value::Enum(0, 0),
                Value::Pid(1),
                Value::Pid(0)
            ]))
        );
    }
}
