//! # verc3-spec — runtime-defined protocols
//!
//! A declarative protocol front-end: a TOML document with typed state
//! variables, scalarset symmetry annotations, guarded rules, invariants and
//! synthesis-hole declarations is validated into a [`ProtocolSpec`] and
//! interpreted as a [`verc3_mck::TransitionSystem`] — no recompilation, a
//! protocol is a payload, not a PR.
//!
//! The pipeline:
//!
//! 1. [`toml`] — a small, offline TOML-subset reader (tables,
//!    array-of-tables, strings, ints, bools, arrays, `'''` blocks) that
//!    preserves key order, because declaration order is semantic: variable
//!    order fixes the state's lexicographic [`Ord`], and rule order fixes
//!    the checker's breadth-first insertion order.
//! 2. [`parse`] — an expression/statement language for guards and effects
//!    (`require`, `let`, `choose … = hole("…")`, `if`/`elif`/`else`,
//!    `for p in pids`, assignment, calls), compiled against the declared
//!    types so every name/field/variant error is a structured
//!    [`InvalidSpec`] at load time, never a panic.
//! 3. [`value`] — the interpreted state: a structural [`value::Value`] tree
//!    whose derived `Ord` is order-isomorphic to an equivalent hand-written
//!    state struct, with a structural `Symmetric` implementation (pid
//!    remapping, pid-indexed array permutation, multiset rebuild) and a
//!    `signature` over the leading pid-indexed array so orbit
//!    canonicalization works unchanged.
//! 4. [`interp`] — the compiled-rule interpreter: each spec rule becomes a
//!    [`verc3_mck::Rule`] closure over an immutable compiled program;
//!    `choose` consults the live [`verc3_mck::HoleResolver`] exactly like
//!    hand-written skeletons do (every hole of a rule is consulted before a
//!    wildcard aborts the application), so lazy hole discovery, pruning
//!    patterns and candidate enumeration are oblivious to the front-end.
//!
//! The equivariance contract: with `symmetry = true`, the first declared
//! variable must be an `array[pid] of R` whose element record contains no
//! `pid`-typed leaves. Rank keys over that array are then permutation
//! covariant, which makes the signature sound for orbit pruning; because
//! the array is also the first `Ord` component of the state, the signature
//! dominates the state order and dense-sweep and orbit canonicalization
//! pick identical representatives.

pub mod ast;
pub mod error;
pub mod interp;
pub mod parse;
pub mod spec;
pub mod toml;
pub mod value;

pub use error::InvalidSpec;
pub use interp::SpecModel;
pub use spec::{ProtocolSpec, SpecGolden};
pub use value::{SpecState, Value};
