//! Lexer and recursive-descent parser for the guard/effect language.
//!
//! Precedence, loosest to tightest: `||`, `&&`, comparisons / `in […]`,
//! `+ -`, unary `!`, postfix `.field` / `[index]`, primary. All parse
//! errors are [`InvalidSpec::Syntax`] values carrying the enclosing block's
//! name so a bad rule body points at the rule, not at a character offset in
//! the concatenated document.

use crate::ast::{BinOp, Expr, LValue, PathSeg, Stmt, UnOp};
use crate::error::InvalidSpec;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Dot,
    Comma,
    Semi,
    Assign,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    AndAnd,
    OrOr,
    Bang,
    End,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(i) => format!("`{i}`"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::End => "end of block".into(),
            t => format!("{t:?}"),
        }
    }
}

fn lex(src: &str, context: &str) -> Result<Vec<Tok>, InvalidSpec> {
    let s = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let err = |message: String| InvalidSpec::Syntax {
        context: context.to_string(),
        message,
    };
    while i < s.len() {
        let c = s[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < s.len() && s[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b'[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            b']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b'.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            b'+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            b'=' => {
                if s.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::EqEq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if s.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Bang);
                    i += 1;
                }
            }
            b'<' => {
                if s.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if s.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            b'&' => {
                if s.get(i + 1) == Some(&b'&') {
                    toks.push(Tok::AndAnd);
                    i += 2;
                } else {
                    return Err(err("single `&` (use `&&`)".into()));
                }
            }
            b'|' => {
                if s.get(i + 1) == Some(&b'|') {
                    toks.push(Tok::OrOr);
                    i += 2;
                } else {
                    return Err(err("single `|` (use `||`)".into()));
                }
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < s.len() && s[j] != b'"' && s[j] != b'\n' {
                    j += 1;
                }
                if j >= s.len() || s[j] != b'"' {
                    return Err(err("unterminated string".into()));
                }
                toks.push(Tok::Str(String::from_utf8_lossy(&s[start..j]).into_owned()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < s.len() && s[i].is_ascii_digit() {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&s[start..i]).into_owned();
                toks.push(Tok::Int(
                    text.parse()
                        .map_err(|e| err(format!("bad integer `{text}`: {e}")))?,
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < s.len() && (s[i].is_ascii_alphanumeric() || s[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Ident(
                    String::from_utf8_lossy(&s[start..i]).into_owned(),
                ));
            }
            c => return Err(err(format!("unexpected character `{}`", c as char))),
        }
    }
    toks.push(Tok::End);
    Ok(toks)
}

/// Parses a single expression (used for property bodies).
pub fn parse_expr(src: &str, context: &str) -> Result<Expr, InvalidSpec> {
    let mut p = P::new(src, context)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a statement block (used for rule and fn bodies).
pub fn parse_block(src: &str, context: &str) -> Result<Vec<Stmt>, InvalidSpec> {
    let mut p = P::new(src, context)?;
    let mut out = Vec::new();
    while p.cur() != &Tok::End {
        out.push(p.stmt()?);
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
    context: String,
}

impl P {
    fn new(src: &str, context: &str) -> Result<Self, InvalidSpec> {
        Ok(P {
            toks: lex(src, context)?,
            pos: 0,
            context: context.to_string(),
        })
    }

    fn err(&self, message: String) -> InvalidSpec {
        InvalidSpec::Syntax {
            context: self.context.clone(),
            message,
        }
    }

    fn cur(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.cur() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), InvalidSpec> {
        if self.cur() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                t.describe(),
                self.cur().describe()
            )))
        }
    }

    fn expect_end(&mut self) -> Result<(), InvalidSpec> {
        if self.cur() == &Tok::End {
            Ok(())
        } else {
            Err(self.err(format!("trailing {}", self.cur().describe())))
        }
    }

    fn ident(&mut self) -> Result<String, InvalidSpec> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected an identifier, found {}", t.describe()))),
        }
    }

    // ---- Statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, InvalidSpec> {
        match self.cur().clone() {
            Tok::Ident(kw) if kw == "require" => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Require(e))
            }
            Tok::Ident(kw) if kw == "let" => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let(name, e))
            }
            Tok::Ident(kw) if kw == "choose" => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let callee = self.ident()?;
                if callee != "hole" {
                    return Err(self.err(format!(
                        "`choose` binds from `hole(\"name\")`, found `{callee}`"
                    )));
                }
                self.expect(Tok::LParen)?;
                let hole = match self.bump() {
                    Tok::Str(s) => s,
                    t => {
                        return Err(self.err(format!(
                            "expected a quoted hole name, found {}",
                            t.describe()
                        )))
                    }
                };
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Choose(name, hole))
            }
            Tok::Ident(kw) if kw == "if" => self.if_stmt(),
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                let name = self.ident()?;
                let kw_in = self.ident()?;
                if kw_in != "in" {
                    return Err(self.err("expected `in` after the loop binder".into()));
                }
                let domain = self.ident()?;
                if domain != "pids" {
                    return Err(self.err("the only loop domain is `pids`".into()));
                }
                let body = self.block()?;
                Ok(Stmt::ForPids(name, body))
            }
            Tok::Ident(_) => {
                let base = self.ident()?;
                if self.cur() == &Tok::LParen {
                    let args = self.args()?;
                    self.expect(Tok::Semi)?;
                    return Ok(Stmt::Call(base, args));
                }
                let mut path = Vec::new();
                loop {
                    if self.eat(&Tok::Dot) {
                        path.push(PathSeg::Field(self.ident()?));
                    } else if self.eat(&Tok::LBracket) {
                        let idx = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        path.push(PathSeg::Index(idx));
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign(LValue { base, path }, value))
            }
            t => Err(self.err(format!("expected a statement, found {}", t.describe()))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, InvalidSpec> {
        self.bump(); // `if`
        let mut arms = Vec::new();
        let cond = self.expr()?;
        let body = self.block()?;
        arms.push((cond, body));
        let mut else_ = Vec::new();
        loop {
            match self.cur().clone() {
                Tok::Ident(kw) if kw == "elif" => {
                    self.bump();
                    let cond = self.expr()?;
                    let body = self.block()?;
                    arms.push((cond, body));
                }
                Tok::Ident(kw) if kw == "else" => {
                    self.bump();
                    else_ = self.block()?;
                    break;
                }
                _ => break,
            }
        }
        Ok(Stmt::If(arms, else_))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, InvalidSpec> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while self.cur() != &Tok::RBrace {
            if self.cur() == &Tok::End {
                return Err(self.err("unterminated `{` block".into()));
            }
            out.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(out)
    }

    fn args(&mut self) -> Result<Vec<Expr>, InvalidSpec> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if self.eat(&Tok::Comma) {
                continue;
            }
            self.expect(Tok::RParen)?;
            return Ok(out);
        }
    }

    // ---- Expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, InvalidSpec> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, InvalidSpec> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, InvalidSpec> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, InvalidSpec> {
        let lhs = self.add_expr()?;
        let op = match self.cur() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::Ident(kw) if kw == "in" => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let mut items = Vec::new();
                loop {
                    items.push(self.expr()?);
                    if self.eat(&Tok::Comma) {
                        continue;
                    }
                    self.expect(Tok::RBracket)?;
                    break;
                }
                return Ok(Expr::InList(Box::new(lhs), items));
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, InvalidSpec> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.cur() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, InvalidSpec> {
        if self.eat(&Tok::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, InvalidSpec> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Tok::Dot) {
                let field = self.ident()?;
                e = Expr::Field(Box::new(e), field);
            } else if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(Tok::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, InvalidSpec> {
        match self.bump() {
            Tok::Int(i) => Ok(Expr::Int(i)),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "none" => Ok(Expr::None_),
                "DIR" => Ok(Expr::Dir),
                _ => {
                    if self.cur() == &Tok::LParen {
                        let args = self.args()?;
                        Ok(Expr::Call(name, args))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            t => Err(self.err(format!("expected an expression, found {}", t.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_statement_shapes() {
        let body = r#"
require is_none(error);                 # guard
let mo = find(net, c, k, r);
require is_some(mo);
let m = get(mo);
if st == CacheState.IS_D && k == MsgKind.Data {
  cache_apply(c, m, cache_resp.send_ack, CacheState.S);
}
elif st == CacheState.SM_AD && k == MsgKind.Inv {
  choose resp = hole("cache/SM_AD+Inv/resp");
  cache_apply(c, m, resp, CacheState[resp]);
}
else {
  remove(net, m);
  poison(Fault.UnexpectedMessage);
}
for p in pids {
  if contains(dir.sharers, p) && p != m.req { send(MsgKind.Inv, p, m.req, 0); }
}
caches[c].got = caches[c].got + 1;
dir.owner = none;
"#;
        let stmts = parse_block(body, "test").expect("parses");
        assert_eq!(stmts.len(), 8);
        assert!(matches!(&stmts[4], Stmt::If(arms, els) if arms.len() == 2 && !els.is_empty()));
        assert!(
            matches!(&stmts[6], Stmt::Assign(lv, _) if lv.base == "caches" && lv.path.len() == 2)
        );
    }

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("a + 1 >= b && !c || d in [1, 2]", "test").expect("parses");
        // ((a+1 >= b) && (!c)) || (d in [1,2])
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::And, _, _)));
                assert!(matches!(*rhs, Expr::InList(_, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("a ++", "t").is_err());
        assert!(parse_block("let = 3;", "t").is_err());
        assert!(parse_block("if a { b = 1;", "t").is_err());
        assert!(matches!(
            parse_block("choose x = pick(\"h\");", "t"),
            Err(InvalidSpec::Syntax { .. })
        ));
    }
}
