//! A narrated walkthrough of the paper's Figure 2 — how lazy hole discovery,
//! wildcard candidates, and pruning patterns interact.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fig2_walkthrough
//! ```

use verc3::mck::{GraphModel, Verdict};
use verc3::synth::{SynthOptions, Synthesizer};

fn main() {
    let model = GraphModel::worked_example();
    println!(
        "The model: a state graph whose edges are guarded by hole@action \
         pairs.\nHole 1 offers actions [A, B, C]; holes 2-4 offer [A, B]; \
         {} complete candidates exist.\n",
        model.candidate_space()
    );

    let report = Synthesizer::new(SynthOptions::default().record_runs(true)).run(&model);

    for r in report.run_log() {
        let candidate = r.candidate.display_named(report.holes());
        print!("run {:>2}: dispatch {candidate:<28}", r.run);
        match r.verdict {
            Verdict::Unknown => print!("-> unknown  "),
            Verdict::Failure => print!("-> failure  "),
            Verdict::Success => print!("-> SUCCESS  "),
        }
        if r.pattern_added {
            print!("[pattern recorded: every candidate extending this one is doomed] ");
        }
        if !r.discovered.is_empty() {
            print!("[discovered hole(s) {}]", r.discovered.join(", "));
        }
        println!();
    }

    println!();
    println!(
        "{} model-checker runs instead of {} naive evaluations — recorded \
         failure patterns pruned {} enumerated configurations (counted across \
         the widening wildcard generations) without dispatching them.",
        report.stats().evaluated,
        report.naive_candidate_space(),
        report.stats().skipped_by_pruning,
    );
    println!(
        "The surviving candidate {} is the figure's unique solution.",
        report.solutions()[0].display_named(report.holes())
    );
}
