//! Measures what the session-based synthesis loop saves over per-candidate
//! restarts on the MSI workloads: runs both modes and prints expansion and
//! reuse counters side by side.
//!
//! ```text
//! cargo run --release --example reuse_probe
//! ```
//!
//! The full benchmark (JSON emission, acceptance assertions, parallel
//! rows) is `cargo bench -p verc3-bench --bench incremental_check`.

use verc3::protocols::msi::{MsiConfig, MsiModel};
use verc3::synth::{PatternMode, SynthOptions, Synthesizer};

fn main() {
    for (name, config) in [
        ("msi_small", MsiConfig::msi_small()),
        ("msi_large", MsiConfig::msi_large()),
    ] {
        let model = MsiModel::new(config);
        for (label, reuse) in [("one-shot", false), ("sessions", true)] {
            let t0 = std::time::Instant::now();
            let report = Synthesizer::new(
                SynthOptions::default()
                    .pattern_mode(PatternMode::Refined)
                    .reuse_sessions(reuse),
            )
            .run(&model);
            let s = report.stats();
            println!(
                "{name:10} {label:9} evaluated={:6} patterns={:6} solutions={} expanded={:9} reused={:9} rate={:.1}% wall={:?}",
                s.evaluated, s.patterns, report.solutions().len(),
                s.check_states_expanded, s.check_states_reused,
                s.check_reuse_rate() * 100.0, t0.elapsed()
            );
        }
    }
}
