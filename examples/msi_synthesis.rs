//! The paper's case study end-to-end: synthesize the transient-state actions
//! of a directory-based MSI cache-coherence protocol (§III).
//!
//! Runs the MSI-small instance (8 holes = 2 directory + 1 cache transition
//! rules, 231 525 naïve candidates) with trace-refined candidate pruning and
//! prints the full report: discovered holes, per-generation statistics, and
//! every synthesized solution grouped into behavioural equivalence classes.
//!
//! Run with (release strongly recommended):
//!
//! ```text
//! cargo run --release --example msi_synthesis
//! ```

use verc3::protocols::msi::{MsiConfig, MsiModel};
use verc3::synth::{PatternMode, SynthOptions, Synthesizer};

fn main() {
    let config = MsiConfig::msi_small();
    println!(
        "MSI-small: {} holes over {} transient rules; {} naive candidates",
        config.hole_count(),
        config.cache_holes.len() + config.dir_holes.len(),
        config.candidate_space(),
    );
    println!();

    let model = MsiModel::new(config);
    let report =
        Synthesizer::new(SynthOptions::default().pattern_mode(PatternMode::Refined)).run(&model);

    println!("{report}");

    println!("per-generation breakdown (frontier k, space, evaluated, pruned):");
    for g in &report.stats().generations {
        println!(
            "  k={:<2} space={:<12} evaluated={:<8} pruned={}",
            g.k, g.space, g.evaluated, g.skipped_by_pruning
        );
    }
    println!();

    println!("behavioural equivalence classes (by visited states):");
    for (states, count) in report.solution_classes() {
        println!("  {count} solutions exploring {states} states each");
    }
    println!();
    println!(
        "the paper observed the same phenomenon: its 12 MSI-large solutions \
         group into 3 classes that \"behave equivalently, yet subtly \
         different from the other sets\""
    );

    assert!(!report.solutions().is_empty());
}
