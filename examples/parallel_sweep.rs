//! Parallel synthesis: sweep worker threads over the MSI-small problem.
//!
//! Reproduces the shape of the paper's parallel results (Table I): multiple
//! workers split each generation's candidate range, share discovered holes
//! through the global registry, and pick up each other's pruning patterns at
//! chunk boundaries — so the evaluated-candidate count can even *drop*
//! slightly as threads are added, exactly as the paper observed between its
//! 1- and 4-thread rows.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```

use std::time::Instant;
use verc3::protocols::msi::{MsiConfig, MsiModel};
use verc3::synth::{PatternMode, SynthOptions, Synthesizer};

fn main() {
    let model = MsiModel::new(MsiConfig::msi_small());

    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12}",
        "threads", "evaluated", "patterns", "solutions", "time"
    );
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let report = Synthesizer::new(
            SynthOptions::default()
                .pattern_mode(PatternMode::Refined)
                .threads(threads),
        )
        .run(&model);
        let elapsed = start.elapsed();
        let speedup = match baseline {
            None => {
                baseline = Some(elapsed);
                String::from("1.0x")
            }
            Some(base) => {
                format!("{:.1}x", base.as_secs_f64() / elapsed.as_secs_f64())
            }
        };
        println!(
            "{threads:>8} {:>12} {:>10} {:>10} {:>9.1?} ({speedup})",
            report.stats().evaluated,
            report.stats().patterns,
            report.solutions().len(),
            elapsed,
        );
        assert!(
            !report.solutions().is_empty(),
            "every configuration must solve"
        );
    }
}
