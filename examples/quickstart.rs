//! Quickstart: synthesize your first protocol rule in ~30 lines.
//!
//! We take the bundled VI (Valid/Invalid) coherence protocol, blank out the
//! cache's "data arrived" rule, and let the synthesizer find the completion:
//! acknowledge the directory and move to the Valid state.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use verc3::protocols::vi::{ViConfig, ViModel};
use verc3::synth::{SynthOptions, Synthesizer};

fn main() {
    // A protocol skeleton: the `IV_D + Data` transient rule is a hole with
    // 3 response actions x 3 next states = 9 candidate completions.
    let model = ViModel::new(ViConfig::synth_cache());

    // Synthesis = enumerate candidates, model-check each, prune inferred
    // failures. No example traces or designer hints required (that is the
    // paper's improvement over TRANSIT-style tools).
    let report = Synthesizer::new(SynthOptions::default()).run(&model);

    println!("discovered holes:");
    for hole in report.holes() {
        println!("  {} with actions {:?}", hole.name, hole.actions);
    }
    println!();
    println!(
        "{} model-checker runs over a space of {} complete candidates \
         ({} pruned; runs include the hole-discovery pass)",
        report.stats().evaluated,
        report.naive_candidate_space(),
        report.stats().skipped_by_pruning,
    );
    println!();
    for solution in report.solutions() {
        println!(
            "solution: {}  (verified over {} states)",
            solution.display_named(report.holes()),
            solution.visited_states,
        );
    }

    assert_eq!(
        report.solutions().len(),
        1,
        "VI has a unique correct completion"
    );
}
