//! Define a concurrent system from scratch with the guarded-command builder
//! and synthesize one of its decisions.
//!
//! The system: a two-lane traffic junction. Each lane's controller cycles
//! red → green → red; a *sensor* event triggers the switch. The designer
//! knows the cycle but has left one decision open: when lane A's light turns
//! green, what must happen to lane B's? The action library offers "nothing",
//! "also green", and "force red". Only one choice satisfies both safety
//! (never two greens) and liveness (every lane can always become green
//! again).
//!
//! Run with:
//!
//! ```text
//! cargo run --example custom_protocol
//! ```

use verc3::mck::{Choice, HoleSpec, ModelBuilder, RuleOutcome};
use verc3::synth::{SynthOptions, Synthesizer};

/// Light states for (lane A, lane B): false = red, true = green.
type Junction = (bool, bool);

fn main() {
    let mut b = ModelBuilder::new("junction");
    b.initial((false, false));

    // Lane A turns green when its sensor fires — and the synthesizer decides
    // what simultaneously happens to lane B.
    let on_a_green = HoleSpec::new("on-A-green", ["leave-B", "B-green-too", "force-B-red"]);
    b.rule("sensor-A", move |&(a, b2): &Junction, ctx| {
        if a {
            return RuleOutcome::Disabled; // already green
        }
        match ctx.choose(&on_a_green) {
            Choice::Wildcard => RuleOutcome::Blocked,
            Choice::Action(0) => RuleOutcome::Next((true, b2)),
            Choice::Action(1) => RuleOutcome::Next((true, true)),
            Choice::Action(_) => RuleOutcome::Next((true, false)),
        }
    });

    // Lane B's own sensor only yields green while A is red (that interlock
    // the designer already built), and each lane eventually falls back to
    // red.
    b.rule("sensor-B", |&(a, b2): &Junction, _| {
        if !b2 && !a {
            RuleOutcome::Next((a, true))
        } else {
            RuleOutcome::Disabled
        }
    });
    b.rule("timeout-A", |&(a, b2): &Junction, _| {
        if a {
            RuleOutcome::Next((false, b2))
        } else {
            RuleOutcome::Disabled
        }
    });
    b.rule("timeout-B", |&(a, b2): &Junction, _| {
        if b2 {
            RuleOutcome::Next((a, false))
        } else {
            RuleOutcome::Disabled
        }
    });

    // Safety: never both green. Liveness: both lanes must be servable.
    b.invariant("no crossing collision", |&(a, b2): &Junction| !(a && b2));
    b.reachable("lane A can be green", |&(a, _): &Junction| a);
    b.reachable("lane B can be green", |&(_, b2): &Junction| b2);
    let model = b.finish();

    let report = Synthesizer::new(SynthOptions::default()).run(&model);
    println!("candidates evaluated : {}", report.stats().evaluated);
    println!("solutions            : {}", report.solutions().len());
    for s in report.solutions() {
        println!("  {}", s.display_named(report.holes()));
    }

    // "leave-B" would let sensor-A fire while B is green -> collision;
    // "B-green-too" is an immediate collision; only "force-B-red" survives.
    assert_eq!(report.solutions().len(), 1);
    assert_eq!(report.solutions()[0].action_for(0), Some(2));
}
